//! Workspace automation driver, invoked as `cargo xtask <command>` (the
//! alias lives in `.cargo/config.toml`).
//!
//! Commands:
//!
//! * `check-trace FILE` — validates a Chrome trace written by `--trace`
//!   (see [`trace_check`]): parseable JSON array of span (`"X"`) and
//!   counter (`"C"`) events, non-empty, time-ordered per thread / per
//!   counter, with well-typed span args. CI runs it on a bench smoke
//!   trace so a silently-broken recorder fails the build.
//! * `expo-check FILE` — validates an admin-plane metrics scrape (see
//!   [`xtask::expo_check`]): well-formed exposition grammar, paired
//!   HELP/TYPE per family, unique series, finite values, non-negative
//!   counters, legal quantile labels. CI scrapes the closed-loop smoke's
//!   `--admin-port` mid-run and gates the snapshot through it.
//! * `trace-analyze FILE [--stage NAME] [--json OUT] [--check]` — the
//!   parallel-efficiency report (see [`trace_analyze`]): per-stage worker
//!   utilization, critical-path ratio, and chunk-imbalance statistics,
//!   with per-worker timeline bars for `--stage`. `--check` gates CI on
//!   every stage reporting positive utilization.
//! * `stage-diff BASE CUR [--threshold F]` — compares two bench
//!   `*.stages.json` files (see [`stage_diff`]): per-stage construction
//!   time *shares* and peak heap bytes must stay within the threshold
//!   (default 0.10) of the baseline. CI diffs the smoke run against a
//!   committed baseline so a stage silently ballooning fails the build.
//! * `slo-check RESULT.json [--p99-ns N] [--min-qps F] [--p99-queue-ns N]
//!   [--p99-exec-ns N] [--baseline FILE] [--slack F]` — gates a
//!   `queries_closed_loop --json` artifact (see [`xtask::slo_check`]): the
//!   overall p99 latency must stay under the ceiling, the sustained qps
//!   above the floor, and the queue/exec phase p99s under their own
//!   ceilings, with thresholds given explicitly and/or derived from a
//!   committed baseline result ± slack. CI runs it on a serving smoke so a
//!   latency-tail, throughput, or queueing regression fails the build.
//! * `bless-baseline` — reruns the CI obs smoke (same binary, same flags,
//!   reps 5) and rewrites `results/baselines/table2_smoke.stages.json`
//!   with the fresh output, after validating that it parses and
//!   stage-diffs cleanly against itself; then reruns the CI serving smoke
//!   and rewrites `results/baselines/closed_loop_smoke.json` the same way
//!   (fresh result must slo-check against itself). Run it after
//!   intentionally changing the pipeline's stage shape or the serving
//!   path's performance envelope.
//! * `lint [--skip-clippy] [--json OUT] [--inventory OUT]` — the
//!   workspace's static-analysis gate, in two stages:
//!   1. **source lints** (see [`xtask::lints`]): the line-based rules
//!      (`SAFETY:` comments near every `unsafe`, the unsafe file
//!      allowlist, hot-path panic bans, `unsafe_op_in_unsafe_fn` denial)
//!      plus the token-aware passes driven by the in-tree lexer — the
//!      hot-path allocation ban, the atomic-ordering audit, the
//!      lock-across-parallel-region check, and span coverage of chunked
//!      stages. `--json` writes the machine-readable report;
//!      `--inventory` writes the atomic-ordering inventory table.
//!   2. **curated clippy set** — `-D warnings` plus
//!      `undocumented_unsafe_blocks`, `dbg_macro`, and `todo`, across all
//!      targets. Skipped with `--skip-clippy` for a fast editor loop.
//! * `lint-fixtures` — runs the lint fixture corpus
//!   (`crates/xtask/tests/lint_fixtures/`): accept fixtures must be
//!   clean, reject fixtures must still trip their rule, so the lints
//!   themselves cannot rot. CI runs this next to the workspace lint.
//!
//! Exit code 0 means the tree is clean; 1 means violations were printed.

mod stage_diff;
mod trace_analyze;

use xtask::{expo_check, fixtures, lints, slo_check, trace_check, trace_read};

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match parse_lint_args(&args[1..]) {
            Ok(opts) => lint(&opts),
            Err(e) => {
                eprintln!("xtask lint: {e}");
                ExitCode::from(2)
            }
        },
        Some("lint-fixtures") => lint_fixtures(),
        Some("check-trace") => match args.get(1) {
            Some(file) => check_trace(Path::new(file)),
            None => {
                eprintln!("usage: cargo xtask check-trace <trace.json>");
                ExitCode::from(2)
            }
        },
        Some("expo-check") => match args.get(1) {
            Some(file) => check_expo(Path::new(file)),
            None => {
                eprintln!("usage: cargo xtask expo-check <scrape.txt>");
                ExitCode::from(2)
            }
        },
        Some("trace-analyze") => match args.get(1) {
            Some(file) => match parse_analyze_args(&args[2..]) {
                Ok(opts) => run_trace_analyze(Path::new(file), &opts),
                Err(e) => {
                    eprintln!("xtask trace-analyze: {e}");
                    ExitCode::from(2)
                }
            },
            None => {
                eprintln!(
                    "usage: cargo xtask trace-analyze <trace.json> [--stage NAME] \
                     [--json OUT] [--check] [--min-util F]"
                );
                ExitCode::from(2)
            }
        },
        Some("stage-diff") => match (args.get(1), args.get(2)) {
            (Some(base), Some(cur)) => {
                let threshold = match parse_threshold(&args[3..]) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("xtask stage-diff: {e}");
                        return ExitCode::from(2);
                    }
                };
                run_stage_diff(Path::new(base), Path::new(cur), threshold)
            }
            _ => {
                eprintln!(
                    "usage: cargo xtask stage-diff <baseline.stages.json> \
                     <current.stages.json> [--threshold F]"
                );
                ExitCode::from(2)
            }
        },
        Some("bless-baseline") => bless_baseline(),
        Some("slo-check") => match args.get(1) {
            Some(file) => match parse_slo_args(&args[2..]) {
                Ok(opts) => run_slo_check(Path::new(file), &opts),
                Err(e) => {
                    eprintln!("xtask slo-check: {e}");
                    ExitCode::from(2)
                }
            },
            None => {
                eprintln!(
                    "usage: cargo xtask slo-check <result.json> [--p99-ns N] [--min-qps F] \
                     [--p99-queue-ns N] [--p99-exec-ns N] [--baseline FILE] [--slack F]"
                );
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!(
                "usage: cargo xtask lint [--skip-clippy] [--json OUT] [--inventory OUT] | \
                 lint-fixtures | check-trace <trace.json> | expo-check <scrape.txt> | \
                 trace-analyze <trace.json> [--stage NAME] [--json OUT] [--check] \
                 [--min-util F] | \
                 stage-diff <base.json> <cur.json> [--threshold F] | bless-baseline | \
                 slo-check <result.json> [--p99-ns N] [--min-qps F] [--p99-queue-ns N] \
                 [--p99-exec-ns N] [--baseline FILE] [--slack F]"
            );
            ExitCode::from(2)
        }
    }
}

/// Options for `slo-check` after the result-file argument.
#[derive(Default)]
struct SloArgs {
    p99_ns: Option<u64>,
    min_qps: Option<f64>,
    p99_queue_ns: Option<u64>,
    p99_exec_ns: Option<u64>,
    baseline: Option<PathBuf>,
    slack: Option<f64>,
}

fn parse_slo_args(rest: &[String]) -> Result<SloArgs, String> {
    let mut opts = SloArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--p99-ns" => {
                let value = it.next().ok_or("--p99-ns needs a value")?;
                opts.p99_ns = Some(
                    value
                        .parse()
                        .map_err(|e| format!("--p99-ns: {e} (got `{value}`)"))?,
                );
            }
            "--min-qps" => {
                let value = it.next().ok_or("--min-qps needs a value")?;
                opts.min_qps = match value.parse::<f64>() {
                    Ok(f) if f.is_finite() && f >= 0.0 => Some(f),
                    _ => return Err(format!("--min-qps must be non-negative, got `{value}`")),
                };
            }
            "--p99-queue-ns" => {
                let value = it.next().ok_or("--p99-queue-ns needs a value")?;
                opts.p99_queue_ns = Some(
                    value
                        .parse()
                        .map_err(|e| format!("--p99-queue-ns: {e} (got `{value}`)"))?,
                );
            }
            "--p99-exec-ns" => {
                let value = it.next().ok_or("--p99-exec-ns needs a value")?;
                opts.p99_exec_ns = Some(
                    value
                        .parse()
                        .map_err(|e| format!("--p99-exec-ns: {e} (got `{value}`)"))?,
                );
            }
            "--baseline" => {
                let path = it.next().ok_or("--baseline needs a file path")?;
                opts.baseline = Some(PathBuf::from(path));
            }
            "--slack" => {
                let value = it.next().ok_or("--slack needs a value")?;
                opts.slack = match value.parse::<f64>() {
                    Ok(f) if f.is_finite() && f >= 0.0 => Some(f),
                    _ => return Err(format!("--slack must be non-negative, got `{value}`")),
                };
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.slack.is_some() && opts.baseline.is_none() {
        return Err("--slack only makes sense with --baseline".into());
    }
    Ok(opts)
}

/// Gates a closed-loop result file on SLO thresholds (explicit flags,
/// baseline-derived, or both — explicit wins per dimension).
fn run_slo_check(path: &Path, args: &SloArgs) -> ExitCode {
    let text = match trace_read::read_file("slo-check", path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut thresholds = slo_check::SloThresholds::default();
    if let Some(baseline_path) = &args.baseline {
        let baseline = trace_read::read_file("slo-check", baseline_path)
            .and_then(|t| slo_check::parse_result("baseline", &t));
        match baseline {
            Ok(b) => {
                thresholds = slo_check::baseline_thresholds(
                    &b,
                    args.slack.unwrap_or(slo_check::DEFAULT_SLACK),
                );
            }
            Err(e) => {
                eprintln!("xtask slo-check: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Explicit flags override the baseline-derived value for their
    // dimension.
    thresholds.p99_ns = args.p99_ns.or(thresholds.p99_ns);
    thresholds.min_qps = args.min_qps.or(thresholds.min_qps);
    thresholds.p99_queue_ns = args.p99_queue_ns.or(thresholds.p99_queue_ns);
    thresholds.p99_exec_ns = args.p99_exec_ns.or(thresholds.p99_exec_ns);
    match slo_check::check_slo_text(&text, &thresholds) {
        Ok(out) => {
            eprint!("{}", out.report);
            if out.failed {
                eprintln!("xtask slo-check: {} FAILED", path.display());
                ExitCode::FAILURE
            } else {
                eprintln!("xtask slo-check: {} ok", path.display());
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("xtask slo-check: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Options for `trace-analyze` after the file argument.
#[derive(Default)]
struct AnalyzeOpts {
    stage: Option<String>,
    json_out: Option<PathBuf>,
    check: bool,
    min_util: f64,
}

fn parse_analyze_args(rest: &[String]) -> Result<AnalyzeOpts, String> {
    let mut opts = AnalyzeOpts::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--stage" => {
                let name = it.next().ok_or("--stage needs a stage name")?;
                opts.stage = Some(name.clone());
            }
            "--json" => {
                let path = it.next().ok_or("--json needs an output path")?;
                opts.json_out = Some(PathBuf::from(path));
            }
            "--check" => opts.check = true,
            "--min-util" => {
                let value = it.next().ok_or("--min-util needs a value")?;
                opts.min_util = match value.parse::<f64>() {
                    Ok(f) if (0.0..=1.0).contains(&f) => f,
                    _ => return Err(format!("--min-util must be in [0, 1], got `{value}`")),
                };
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Runs the analyzer over a trace file; exit 0 unless the file is
/// unreadable/invalid or `--check` found an idle or empty stage set.
fn run_trace_analyze(path: &Path, opts: &AnalyzeOpts) -> ExitCode {
    let text = match trace_read::read_file("trace-analyze", path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let analysis = match trace_analyze::analyze_trace_text(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask trace-analyze: {} invalid: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    print!(
        "{}",
        trace_analyze::render_report(&analysis, opts.stage.as_deref())
    );
    if let Some(out) = &opts.json_out {
        let mut body = analysis.to_json().pretty();
        body.push('\n');
        if let Err(e) = std::fs::write(out, body) {
            eprintln!("xtask trace-analyze: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("xtask trace-analyze: wrote {}", out.display());
    }
    if opts.check {
        if let Err(e) = trace_analyze::check_analysis(&analysis, opts.min_util) {
            eprintln!("xtask trace-analyze: {} FAILED: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let floor = if opts.min_util > 0.0 {
            format!(">= {}", opts.min_util)
        } else {
            "> 0".to_string()
        };
        eprintln!(
            "xtask trace-analyze: {} ok ({} stages, all utilization {floor})",
            path.display(),
            analysis.stages.len()
        );
    }
    ExitCode::SUCCESS
}

/// Parses `[--threshold F]` from the tail of a stage-diff invocation.
fn parse_threshold(rest: &[String]) -> Result<f64, String> {
    match rest {
        [] => Ok(0.10),
        [flag, value] if flag == "--threshold" => match value.parse::<f64>() {
            Ok(t) if t > 0.0 && t.is_finite() => Ok(t),
            _ => Err(format!(
                "--threshold must be a positive number, got `{value}`"
            )),
        },
        _ => Err(format!("unexpected arguments: {rest:?}")),
    }
}

/// Diffs two bench stage-breakdown JSON files; exit 0 iff every stage's
/// time share and peak memory stayed within the threshold.
fn run_stage_diff(base: &Path, cur: &Path, threshold: f64) -> ExitCode {
    let (base_text, cur_text) = match (
        trace_read::read_file("stage-diff", base),
        trace_read::read_file("stage-diff", cur),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match stage_diff::diff_stage_text(&base_text, &cur_text, threshold) {
        Ok(out) => {
            eprint!("{}", out.report);
            if out.failed {
                eprintln!(
                    "xtask stage-diff: {} vs {} FAILED \
                     (intentional shift? refresh the baseline with \
                     `cargo xtask bless-baseline`)",
                    base.display(),
                    cur.display()
                );
                ExitCode::FAILURE
            } else {
                eprintln!(
                    "xtask stage-diff: {} vs {} ok",
                    base.display(),
                    cur.display()
                );
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("xtask stage-diff: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates an admin-plane metrics scrape; exit 0 iff it is a well-formed,
/// non-empty exposition document (see [`expo_check`]).
fn check_expo(path: &Path) -> ExitCode {
    let text = match trace_read::read_file("expo-check", path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match expo_check::check_expo_text(&text) {
        Ok(n) => {
            eprintln!("xtask expo-check: {} ok ({n} samples)", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask expo-check: {} invalid: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// Validates a `--trace` output file; exit 0 iff it is a well-formed,
/// non-empty, per-thread time-ordered Chrome trace.
fn check_trace(path: &Path) -> ExitCode {
    let text = match trace_read::read_file("check-trace", path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match trace_check::check_trace_text(&text) {
        Ok(n) => {
            eprintln!("xtask check-trace: {} ok ({n} events)", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask check-trace: {} invalid: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// Reruns the CI obs smoke command and rewrites the committed stage
/// baseline with its output. The smoke must produce JSON that parses and
/// stage-diffs cleanly against itself before the baseline is replaced.
fn bless_baseline() -> ExitCode {
    let root = workspace_root();
    let baseline = root.join("results/baselines/table2_smoke.stages.json");
    let trace_tmp = root.join("target/bless-baseline.trace.json");
    eprintln!("xtask bless-baseline: running the CI obs smoke (reps 5, all obs flags)...");
    // Mirror of the "Bench smoke with all obs flags" CI step; keep the two
    // in sync or the blessed baseline will not match what CI measures.
    let output = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .current_dir(&root)
        .args([
            "run",
            "-q",
            "--release",
            "-p",
            "parcsr-bench",
            "--features",
            "obs",
            "--bin",
            "table2",
            "--",
            "--scale",
            "0.02",
            "--reps",
            "5",
            "--procs",
            "1,2",
            "--trace-sample",
            "8",
            "--metrics",
            "--mem-metrics",
            "--trace",
        ])
        .arg(&trace_tmp)
        .arg("--json")
        .output();
    let output = match output {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask bless-baseline: could not run cargo: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !output.status.success() {
        eprintln!("xtask bless-baseline: smoke run failed:");
        eprint!("{}", String::from_utf8_lossy(&output.stderr));
        return ExitCode::FAILURE;
    }
    let text = match String::from_utf8(output.stdout) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bless-baseline: smoke output is not UTF-8: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Self-diff exercises the full baseline parser on the new text; a file
    // that cannot even diff against itself must not become the baseline.
    if let Err(e) = stage_diff::diff_stage_text(&text, &text, 0.25) {
        eprintln!("xtask bless-baseline: smoke output is not a valid stage breakdown: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(dir) = baseline.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("xtask bless-baseline: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&baseline, &text) {
        eprintln!(
            "xtask bless-baseline: cannot write {}: {e}",
            baseline.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "xtask bless-baseline: wrote {} ({} bytes); review and commit it",
        baseline.display(),
        text.len()
    );
    bless_closed_loop_baseline(&root)
}

/// Reruns the CI serving smoke (`queries_closed_loop`, same flags as the
/// `slo` CI job) and rewrites `results/baselines/closed_loop_smoke.json`.
/// The fresh result must parse as a `parcsr.closed_loop.v1` document and
/// slo-check cleanly against itself before it replaces the baseline.
fn bless_closed_loop_baseline(root: &Path) -> ExitCode {
    let baseline = root.join("results/baselines/closed_loop_smoke.json");
    eprintln!("xtask bless-baseline: running the CI serving smoke (queries_closed_loop)...");
    // Mirror of the `slo` CI job's smoke step; keep the two in sync or the
    // blessed baseline will not match what CI measures.
    let output = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .current_dir(root)
        .args([
            "run",
            "-q",
            "--release",
            "-p",
            "parcsr-bench",
            "--features",
            "obs",
            "--bin",
            "queries_closed_loop",
            "--",
            "--graph",
            "hub",
            "--scale",
            "0.02",
            "--clients",
            "2",
            "--duration-ms",
            "600",
            "--window-ms",
            "150",
            "--seed",
            "42",
            "--json",
        ])
        .output();
    let output = match output {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask bless-baseline: could not run cargo: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !output.status.success() {
        eprintln!("xtask bless-baseline: serving smoke failed:");
        eprint!("{}", String::from_utf8_lossy(&output.stderr));
        return ExitCode::FAILURE;
    }
    let text = match String::from_utf8(output.stdout) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bless-baseline: serving smoke output is not UTF-8: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Self-check exercises the full result parser and threshold machinery;
    // a result that cannot pass against itself must not become the
    // baseline.
    let self_thresholds = match slo_check::parse_result("fresh result", &text) {
        Ok(r) => slo_check::baseline_thresholds(&r, slo_check::DEFAULT_SLACK),
        Err(e) => {
            eprintln!("xtask bless-baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    match slo_check::check_slo_text(&text, &self_thresholds) {
        Ok(out) if !out.failed => {}
        Ok(_) => {
            eprintln!("xtask bless-baseline: fresh result fails slo-check against itself");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("xtask bless-baseline: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&baseline, &text) {
        eprintln!(
            "xtask bless-baseline: cannot write {}: {e}",
            baseline.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "xtask bless-baseline: wrote {} ({} bytes); review and commit it",
        baseline.display(),
        text.len()
    );
    ExitCode::SUCCESS
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// All `.rs` files under `dir`, recursively, workspace-relative with unix
/// separators, sorted for deterministic output.
fn rust_files(root: &Path, dir: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join(dir)];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                // `lint_fixtures` holds deliberately-violating snippets for
                // the corpus self-test; they are linted by `lint-fixtures`
                // under pretend paths, never as part of the tree.
                if path
                    .file_name()
                    .is_some_and(|n| n == "target" || n == "lint_fixtures")
                {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = path
                    .strip_prefix(root)
                    .expect("walked path under root")
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    out.sort();
    out
}

/// Options for `lint` after the subcommand.
#[derive(Default)]
struct LintOpts {
    skip_clippy: bool,
    json_out: Option<PathBuf>,
    inventory_out: Option<PathBuf>,
}

fn parse_lint_args(rest: &[String]) -> Result<LintOpts, String> {
    let mut opts = LintOpts::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--skip-clippy" => opts.skip_clippy = true,
            "--json" => {
                let path = it.next().ok_or("--json needs an output path")?;
                opts.json_out = Some(PathBuf::from(path));
            }
            "--inventory" => {
                let path = it.next().ok_or("--inventory needs an output path")?;
                opts.inventory_out = Some(PathBuf::from(path));
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(opts)
}

fn lint(opts: &LintOpts) -> ExitCode {
    let root = workspace_root();
    let mut report = lints::WorkspaceReport::default();
    for dir in ["crates", "shims", "tests", "examples", "benches"] {
        for rel in rust_files(&root, dir) {
            let text = match std::fs::read_to_string(root.join(&rel)) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("xtask: cannot read {rel}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            report.merge(lints::analyze_file(&rel, &text));
        }
    }

    for v in &report.violations {
        eprintln!("error: {v}");
    }
    let mut failed = !report.violations.is_empty();
    eprintln!(
        "xtask lint: source lints {} ({} file{}, {} violation{}, {} explained \
         waiver{}, {} ordering site{})",
        if failed { "FAILED" } else { "ok" },
        report.files,
        if report.files == 1 { "" } else { "s" },
        report.violations.len(),
        if report.violations.len() == 1 {
            ""
        } else {
            "s"
        },
        report.waivers.len(),
        if report.waivers.len() == 1 { "" } else { "s" },
        report.ordering_sites.len(),
        if report.ordering_sites.len() == 1 {
            ""
        } else {
            "s"
        },
    );

    if let Some(out) = &opts.json_out {
        let mut body = report.to_json().pretty();
        body.push('\n');
        if let Err(e) = std::fs::write(out, body) {
            eprintln!("xtask lint: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("xtask lint: wrote {}", out.display());
    }
    if let Some(out) = &opts.inventory_out {
        if let Err(e) = std::fs::write(out, report.inventory_markdown()) {
            eprintln!("xtask lint: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        eprintln!("xtask lint: wrote {}", out.display());
    }

    if !opts.skip_clippy {
        let status = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
            .current_dir(&root)
            .args([
                "clippy",
                "--workspace",
                "--all-targets",
                "--quiet",
                "--",
                "-D",
                "warnings",
                "-D",
                "clippy::undocumented_unsafe_blocks",
                "-D",
                "clippy::dbg_macro",
                "-D",
                "clippy::todo",
            ])
            .status();
        match status {
            Ok(s) if s.success() => eprintln!("xtask lint: clippy ok"),
            Ok(_) => {
                eprintln!("xtask lint: clippy FAILED");
                failed = true;
            }
            Err(e) => {
                eprintln!("xtask lint: could not run cargo clippy: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the lint fixture corpus: accept fixtures clean, reject fixtures
/// still rejecting. Exit 0 iff the corpus (and thus the lints) is healthy.
fn lint_fixtures() -> ExitCode {
    let dir = workspace_root().join("crates/xtask/tests/lint_fixtures");
    match fixtures::check_fixture_corpus(&dir) {
        Ok(summary) => {
            eprintln!("xtask lint-fixtures: {summary}");
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("error: {e}");
            }
            eprintln!("xtask lint-fixtures: FAILED ({} error{})", errors.len(), {
                if errors.len() == 1 {
                    ""
                } else {
                    "s"
                }
            });
            ExitCode::FAILURE
        }
    }
}
