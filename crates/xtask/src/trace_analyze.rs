//! `trace-analyze` — parallel-efficiency report over a Chrome trace file.
//!
//! `cargo xtask trace-analyze <trace.json> [--stage NAME] [--json OUT]
//! [--check] [--min-util F]` feeds the trace's complete (`"X"`) events through
//! [`parcsr_obs::analyze`] and prints, per top-level stage: instance count,
//! wall and busy time, worker utilization, critical-path ratio, and — when
//! the stage recorded per-chunk spans — the chunk-imbalance block
//! (duration CV, straggler id, duration-vs-size correlations).
//!
//! * `--stage NAME` additionally prints every instance of that stage with a
//!   per-worker busy/idle timeline bar, the view that makes a straggler
//!   visible at a glance.
//! * `--json OUT` writes the full analysis (summaries + instances) as JSON
//!   next to the human-readable table; CI uploads it alongside the raw
//!   trace.
//! * `--check` turns the report into a gate: at least one stage must be
//!   present and every stage's utilization must be positive — the cheapest
//!   proof that worker spans actually carry attributable time.
//! * `--min-util F` raises the `--check` floor: every stage's utilization
//!   must be at least `F` (CI uses this to catch load-imbalance
//!   regressions, not just dead traces).

use std::fmt::Write as _;

use parcsr_obs::analyze::{analyze, AnalyzedSpan, StageInstance, TraceAnalysis};

use xtask::trace_read::{parse_trace, Phase, TraceEvent};

/// Width of the per-worker timeline bars printed by `--stage`.
const TIMELINE_COLS: usize = 48;

fn us_to_ns(us: f64) -> u64 {
    if us <= 0.0 {
        0
    } else {
        (us * 1e3).round() as u64
    }
}

/// Converts parsed trace events (µs timestamps) into analyzer spans (ns).
/// Counter events carry no duration and are skipped.
pub fn spans_from_events(events: &[TraceEvent]) -> Vec<AnalyzedSpan> {
    events
        .iter()
        .filter(|ev| ev.ph == Phase::Complete)
        .map(|ev| AnalyzedSpan {
            name: ev.name.clone(),
            start_ns: us_to_ns(ev.ts_us),
            dur_ns: us_to_ns(ev.dur_us),
            tid: u32::try_from(ev.tid).unwrap_or(0),
            depth: ev.arg_u64("depth").map_or(0, |d| d as u16),
            sample: ev.arg_u64("sample").map_or(1, |s| (s as u32).max(1)),
            chunk: ev.arg_u64("chunk"),
            chunk_len: ev.arg_u64("chunk_len"),
            edges: ev.arg_u64("edges"),
        })
        .collect()
}

/// Parses trace text and runs the analyzer over its span events.
pub fn analyze_trace_text(text: &str) -> Result<TraceAnalysis, String> {
    let events = parse_trace(text)?;
    Ok(analyze(&spans_from_events(&events)))
}

/// The `--check` gate: at least one stage, every utilization positive, and
/// — with `min_util > 0` — every stage's utilization at or above the floor.
pub fn check_analysis(analysis: &TraceAnalysis, min_util: f64) -> Result<(), String> {
    if analysis.stages.is_empty() {
        return Err("no top-level stages in trace (nothing to analyze)".into());
    }
    for s in &analysis.stages {
        // partial_cmp so a NaN utilization fails the gate too.
        if s.utilization.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!(
                "stage `{}` reports non-positive utilization {}",
                s.name, s.utilization
            ));
        }
        if s.utilization.partial_cmp(&min_util) == Some(std::cmp::Ordering::Less) {
            return Err(format!(
                "stage `{}` utilization {:.3} is below the --min-util floor {min_util}",
                s.name, s.utilization
            ));
        }
    }
    Ok(())
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders the per-stage summary table plus the straggler report; with
/// `stage_filter`, appends per-instance worker timelines for that stage.
pub fn render_report(analysis: &TraceAnalysis, stage_filter: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>4} {:>10} {:>10} {:>6} {:>7} {:>5}",
        "stage", "runs", "wall_ms", "busy_ms", "util", "cp", "lanes"
    );
    for s in &analysis.stages {
        let _ = writeln!(
            out,
            "{:<18} {:>4} {:>10} {:>10} {:>6.3} {:>7.3} {:>5}",
            s.name,
            s.instances,
            fmt_ms(s.wall_ns),
            fmt_ms(s.busy_ns),
            s.utilization,
            s.critical_path_ratio,
            s.max_workers
        );
    }

    let chunked: Vec<_> = analysis
        .stages
        .iter()
        .filter_map(|s| s.chunks.as_ref().map(|c| (s, c)))
        .collect();
    if !chunked.is_empty() {
        let _ = writeln!(out, "\nchunk imbalance:");
        let _ = writeln!(
            out,
            "{:<18} {:>5} {:>5} {:>10} {:>10} {:>6} {:>14} {:>9} {:>9}",
            "stage", "obs", "est", "mean_ms", "max_ms", "cv", "straggler", "r(len)", "r(edges)"
        );
        for (s, c) in chunked {
            let corr = |v: Option<f64>| v.map_or("-".to_string(), |r| format!("{r:+.2}"));
            let _ = writeln!(
                out,
                "{:<18} {:>5} {:>5} {:>10.3} {:>10} {:>6.2} {:>14} {:>9} {:>9}",
                s.name,
                c.observed,
                c.estimated,
                c.mean_ns / 1e6,
                fmt_ms(c.max_ns),
                c.cv,
                format!("t{} c{}", c.straggler_tid, c.straggler_chunk),
                corr(c.corr_chunk_len),
                corr(c.corr_edges)
            );
        }
    }

    if let Some(name) = stage_filter {
        let matching: Vec<&StageInstance> = analysis
            .instances
            .iter()
            .filter(|i| i.name == name)
            .collect();
        if matching.is_empty() {
            let _ = writeln!(out, "\nstage `{name}`: no instances in trace");
        }
        for (k, inst) in matching.iter().enumerate() {
            let _ = writeln!(
                out,
                "\n{name} #{k}: wall {} ms, util {:.3}, cp {:.3}{}",
                fmt_ms(inst.dur_ns),
                inst.utilization,
                inst.critical_path_ratio,
                if inst.coordinator_only {
                    " (coordinator-only)"
                } else {
                    ""
                }
            );
            let end = inst.start_ns + inst.dur_ns;
            for w in &inst.workers {
                let _ = writeln!(
                    out,
                    "  t{:<3} [{}] busy {} ms / {} span{}",
                    w.tid,
                    w.timeline(inst.start_ns, end, TIMELINE_COLS),
                    fmt_ms(w.busy_ns),
                    w.spans,
                    if w.spans == 1 { "" } else { "s" }
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-worker `degree` stage: worker 1 busy 40 of 50 µs (two spans),
    /// worker 2 busy 10 of 50 µs, both chunk spans carrying payloads; plus
    /// a counter event that must be ignored.
    fn trace() -> String {
        let span = |name: &str, ts: f64, dur: f64, tid: i64, args: &str| {
            format!(
                r#"{{"name":"{name}","cat":"parcsr","ph":"X","ts":{ts},"dur":{dur},"pid":1,"tid":{tid},"args":{args}}}"#
            )
        };
        format!(
            "[{},{},{},{},{}]",
            span(
                "degree.chunk",
                10.0,
                30.0,
                1,
                r#"{"depth":0,"chunk":0,"chunk_len":900,"edges":9000}"#
            ),
            span(
                "degree.chunk",
                45.0,
                10.0,
                1,
                r#"{"depth":0,"chunk":2,"chunk_len":300,"edges":3000}"#
            ),
            span(
                "degree.chunk",
                12.0,
                10.0,
                2,
                r#"{"depth":0,"chunk":1,"chunk_len":300,"edges":3000}"#
            ),
            span("degree", 10.0, 50.0, 0, r#"{"depth":0}"#),
            r#"{"name":"mem.live_bytes","ph":"C","ts":60,"pid":1,"tid":0,"args":{"live_bytes":1}}"#,
        )
    }

    #[test]
    fn busy_sums_match_span_durations_within_one_percent() {
        let analysis = analyze_trace_text(&trace()).unwrap();
        let inst = &analysis.instances[0];
        assert_eq!(inst.name, "degree");

        // Per-worker busy must equal the summed (sample-scaled) durations
        // of that worker's spans — here exactly; the 1% tolerance guards
        // only the float µs→ns rounding.
        let expect = [(1u32, 40_000u64), (2, 10_000)];
        for (tid, want_ns) in expect {
            let w = inst.workers.iter().find(|w| w.tid == tid).unwrap();
            let err = (w.busy_ns as f64 - want_ns as f64).abs() / want_ns as f64;
            assert!(err < 0.01, "tid {tid}: busy {} vs {want_ns}", w.busy_ns);
        }
        assert_eq!(inst.busy_ns, 50_000);
        // 50 µs busy over 2 lanes × 50 µs wall.
        assert!((inst.utilization - 0.5).abs() < 1e-9);
        assert!((inst.critical_path_ratio - 0.8).abs() < 1e-9);
        let chunks = analysis.stage("degree").unwrap().chunks.as_ref().unwrap();
        assert_eq!(chunks.observed, 3);
        assert_eq!(chunks.straggler_tid, 1);
        assert_eq!(chunks.straggler_chunk, 0);
        // Duration is exactly proportional to both size payloads.
        assert!((chunks.corr_chunk_len.unwrap() - 1.0).abs() < 1e-9);
        assert!((chunks.corr_edges.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_scale_up_is_honored_from_trace_args() {
        // One kept-of-four span: busy must scale ×4.
        let text = r#"[
            {"name":"scan.chunk","ph":"X","ts":0,"dur":10,"pid":1,"tid":1,
             "args":{"depth":0,"sample":4,"chunk":0}},
            {"name":"scan","ph":"X","ts":0,"dur":40,"pid":1,"tid":0,"args":{"depth":0}}
        ]"#;
        let analysis = analyze_trace_text(text).unwrap();
        assert_eq!(analysis.instances[0].busy_ns, 40_000);
        assert!((analysis.instances[0].utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn check_gate_accepts_good_and_rejects_empty_or_idle() {
        let analysis = analyze_trace_text(&trace()).unwrap();
        assert!(check_analysis(&analysis, 0.0).is_ok());
        let empty = TraceAnalysis::default();
        assert!(check_analysis(&empty, 0.0)
            .unwrap_err()
            .contains("no top-level"));
    }

    #[test]
    fn check_gate_enforces_utilization_floor() {
        // The fixture's degree stage sits at exactly 0.5 utilization.
        let analysis = analyze_trace_text(&trace()).unwrap();
        assert!(check_analysis(&analysis, 0.5).is_ok(), "floor is inclusive");
        let err = check_analysis(&analysis, 0.75).unwrap_err();
        assert!(err.contains("below the --min-util floor"), "{err}");
    }

    #[test]
    fn report_renders_table_straggler_block_and_timelines() {
        let analysis = analyze_trace_text(&trace()).unwrap();
        let report = render_report(&analysis, Some("degree"));
        assert!(report.contains("stage"), "{report}");
        assert!(report.contains("degree"), "{report}");
        assert!(report.contains("chunk imbalance"), "{report}");
        assert!(report.contains("t1 c0"), "{report}");
        assert!(report.contains("degree #0"), "{report}");
        assert!(report.contains('#'), "{report}");
        let miss = render_report(&analysis, Some("nope"));
        assert!(miss.contains("no instances"), "{miss}");
    }

    #[test]
    fn json_output_parses_and_carries_utilization() {
        let analysis = analyze_trace_text(&trace()).unwrap();
        let text = analysis.to_json().pretty();
        let doc = parcsr_obs::json::Json::parse(&text).unwrap();
        let stages = doc.get("stages").and_then(|s| s.as_array()).unwrap();
        assert_eq!(stages.len(), 1);
        let util = stages[0].get("utilization").and_then(|u| u.as_f64());
        assert_eq!(util, Some(0.5));
    }
}
