//! Validator for admin-plane metric expositions (`cargo xtask expo-check`).
//!
//! CI runs the closed-loop smoke with `--admin-port`, scrapes it mid-run
//! with `parcsr watch --once --out <file>`, and feeds the scrape through
//! this gate — the cheapest end-to-end proof that the live exposition is
//! well-formed, the way `check-trace` proves the offline trace is.
//!
//! Structural parsing (grammar, label escaping, `# EOF` termination) lives
//! in [`parcsr_obs::expo::parse`], shared with the watch client; this
//! module adds the semantic rules:
//!
//! * every family is declared exactly once, with both a `# HELP` and a
//!   `# TYPE` line, before any of its samples;
//! * every sample belongs to a declared family — by exact name for
//!   counters/gauges, or via the `_sum` / `_count` / `_max` suffixes for
//!   summaries;
//! * series are unique: no two samples share a name and label set;
//! * values are finite; counter samples and summary `_sum` / `_count`
//!   series are non-negative (a negative count means the merge path lost
//!   its mind);
//! * summary base-name samples carry a `quantile` label in `(0, 1]`, and
//!   no other family kind uses one;
//! * the document has at least one sample (an empty scrape means the
//!   target served nothing, not that all is quiet — the renderer always
//!   emits `parcsr_up`).

use parcsr_obs::expo::{self, FamilyKind, Sample, TypeDecl};

/// Derived series suffixes a summary family owns.
const SUMMARY_SUFFIXES: [&str; 3] = ["_sum", "_count", "_max"];

fn find_family<'a>(types: &'a [TypeDecl], sample: &Sample) -> Option<&'a TypeDecl> {
    // Exact name first (covers counter/gauge/untyped and summary quantile
    // samples), then the summary suffix forms.
    types.iter().find(|t| t.name == sample.name).or_else(|| {
        types.iter().find(|t| {
            t.kind == FamilyKind::Summary
                && SUMMARY_SUFFIXES
                    .iter()
                    .any(|suf| sample.name == format!("{}{suf}", t.name))
        })
    })
}

fn at(sample: &Sample) -> String {
    format!("line {} (`{}`)", sample.line, sample.name)
}

/// Validates one exposition document. Returns the sample count on success,
/// the first violation on failure.
pub fn check_expo_text(text: &str) -> Result<usize, String> {
    let doc = expo::parse(text)?;

    // Family declarations: unique, and HELP/TYPE paired per name.
    let mut type_names: Vec<&str> = doc.types.iter().map(|t| t.name.as_str()).collect();
    type_names.sort_unstable();
    if let Some(dup) = type_names.windows(2).find(|w| w[0] == w[1]) {
        return Err(format!("family `{}` has more than one TYPE line", dup[0]));
    }
    let mut help_names: Vec<&str> = doc.helps.iter().map(|(n, _)| n.as_str()).collect();
    help_names.sort_unstable();
    if let Some(dup) = help_names.windows(2).find(|w| w[0] == w[1]) {
        return Err(format!("family `{}` has more than one HELP line", dup[0]));
    }
    for t in &doc.types {
        if help_names.binary_search(&t.name.as_str()).is_err() {
            return Err(format!(
                "family `{}` has a TYPE line but no HELP line",
                t.name
            ));
        }
    }
    for name in &help_names {
        if type_names.binary_search(name).is_err() {
            return Err(format!("family `{name}` has a HELP line but no TYPE line"));
        }
    }

    if doc.samples.is_empty() {
        return Err("exposition has no samples (empty scrape)".to_string());
    }

    // Series uniqueness: (name, sorted label set).
    let mut keys: Vec<(String, Vec<(String, String)>)> = doc
        .samples
        .iter()
        .map(|s| {
            let mut labels = s.labels.clone();
            labels.sort();
            (s.name.clone(), labels)
        })
        .collect();
    keys.sort();
    if let Some(dup) = keys.windows(2).find(|w| w[0] == w[1]) {
        return Err(format!(
            "duplicate series `{}` (same name and labels)",
            dup[0].0
        ));
    }

    for sample in &doc.samples {
        if !sample.value.is_finite() {
            return Err(format!("{}: non-finite value {}", at(sample), sample.value));
        }
        let family = find_family(&doc.types, sample)
            .ok_or_else(|| format!("{}: sample without a TYPE declaration", at(sample)))?;
        if family.line > sample.line {
            return Err(format!(
                "{}: sample appears before its TYPE line ({})",
                at(sample),
                family.line
            ));
        }

        let quantile = sample.label("quantile");
        let is_summary_base = family.kind == FamilyKind::Summary && sample.name == family.name;
        match family.kind {
            FamilyKind::Counter => {
                if sample.value < 0.0 {
                    return Err(format!("{}: negative counter value", at(sample)));
                }
            }
            FamilyKind::Summary => {
                if is_summary_base {
                    let q = quantile.ok_or_else(|| {
                        format!("{}: summary sample without a quantile label", at(sample))
                    })?;
                    match q.parse::<f64>() {
                        Ok(q) if q > 0.0 && q <= 1.0 => {}
                        _ => {
                            return Err(format!(
                                "{}: quantile label {q:?} is not in (0, 1]",
                                at(sample)
                            ))
                        }
                    }
                } else if sample.name != format!("{}_max", family.name) && sample.value < 0.0 {
                    return Err(format!("{}: negative summary aggregate value", at(sample)));
                }
            }
            FamilyKind::Gauge | FamilyKind::Untyped => {}
        }
        if quantile.is_some() && !is_summary_base {
            return Err(format!(
                "{}: quantile label on a non-summary series",
                at(sample)
            ));
        }
    }

    Ok(doc.samples.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_obs::metrics::{HistogramSummary, MetricsSnapshot, WindowSeries};

    fn live_render() -> String {
        let mut snap = MetricsSnapshot::default();
        snap.counters.push(("queries.total".to_string(), 12));
        snap.gauges.push(("query.win.epoch".to_string(), 4));
        snap.histograms.push((
            "query.has_edge_ns".to_string(),
            HistogramSummary {
                count: 3,
                sum: 300,
                max: 200,
                p50: 50,
                p95: 200,
                p99: 200,
            },
        ));
        snap.windows.push(WindowSeries {
            name: "query.win.split.hub".to_string(),
            kind: "split",
            class: "hub",
            window: 3,
            summary: HistogramSummary {
                count: 7,
                sum: 700,
                max: 400,
                p50: 100,
                p95: 400,
                p99: 400,
            },
        });
        expo::render(&snap)
    }

    #[test]
    fn rendered_snapshot_passes() {
        let n = check_expo_text(&live_render()).unwrap();
        assert_eq!(n, 1 + 1 + 1 + 6 + 6);
    }

    #[test]
    fn duplicate_type_is_rejected() {
        let text = "# HELP m m\n# TYPE m counter\n# TYPE m counter\nm 1\n# EOF\n";
        assert!(check_expo_text(text)
            .unwrap_err()
            .contains("more than one TYPE"));
    }

    #[test]
    fn type_without_help_is_rejected() {
        let text = "# TYPE m counter\nm 1\n# EOF\n";
        assert!(check_expo_text(text).unwrap_err().contains("no HELP"));
        let text = "# HELP m m\nm 1\n# EOF\n";
        assert!(check_expo_text(text).unwrap_err().contains("no TYPE"));
    }

    #[test]
    fn undeclared_sample_is_rejected() {
        let text = "# HELP m m\n# TYPE m counter\nm 1\nrogue 2\n# EOF\n";
        assert!(check_expo_text(text)
            .unwrap_err()
            .contains("without a TYPE declaration"));
    }

    #[test]
    fn sample_before_its_declaration_is_rejected() {
        let text = "m 1\n# HELP m m\n# TYPE m counter\n# EOF\n";
        assert!(check_expo_text(text)
            .unwrap_err()
            .contains("before its TYPE line"));
    }

    #[test]
    fn duplicate_series_is_rejected() {
        let text = "# HELP m m\n# TYPE m counter\nm 1\nm 2\n# EOF\n";
        assert!(check_expo_text(text)
            .unwrap_err()
            .contains("duplicate series"));
        // Same name, different labels: fine.
        let text = "# HELP m m\n# TYPE m gauge\nm{k=\"a\"} 1\nm{k=\"b\"} 2\n# EOF\n";
        assert_eq!(check_expo_text(text), Ok(2));
    }

    #[test]
    fn negative_counter_is_rejected() {
        let text = "# HELP m m\n# TYPE m counter\nm -1\n# EOF\n";
        assert!(check_expo_text(text)
            .unwrap_err()
            .contains("negative counter"));
    }

    #[test]
    fn non_finite_value_is_rejected() {
        let text = "# HELP m m\n# TYPE m gauge\nm NaN\n# EOF\n";
        assert!(check_expo_text(text).unwrap_err().contains("non-finite"));
    }

    #[test]
    fn summary_quantile_rules_hold() {
        let text = "# HELP s s\n# TYPE s summary\ns 1\n# EOF\n";
        assert!(check_expo_text(text)
            .unwrap_err()
            .contains("without a quantile label"));
        let text = "# HELP s s\n# TYPE s summary\ns{quantile=\"1.5\"} 1\n# EOF\n";
        assert!(check_expo_text(text).unwrap_err().contains("not in (0, 1]"));
        let text = "# HELP g g\n# TYPE g gauge\ng{quantile=\"0.5\"} 1\n# EOF\n";
        assert!(check_expo_text(text)
            .unwrap_err()
            .contains("non-summary series"));
    }

    #[test]
    fn empty_scrape_is_rejected() {
        assert!(check_expo_text("# EOF\n")
            .unwrap_err()
            .contains("no samples"));
    }

    #[test]
    fn negative_summary_sum_is_rejected() {
        let text = "# HELP s s\n# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum -5\n# EOF\n";
        assert!(check_expo_text(text)
            .unwrap_err()
            .contains("negative summary aggregate"));
    }
}
