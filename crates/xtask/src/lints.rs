//! Static-analysis passes over workspace sources.
//!
//! Two generations of machinery live here. The original *line-based* rules
//! (`SAFETY:` proximity, the `unsafe` allowlist, hot-path panic bans) match
//! tokens on comment- and string-stripped lines; the rules they enforce are
//! source conventions, and that is all the structure they need. The newer
//! *token-aware* rules are driven by [`crate::lexer`] — a real token stream
//! with a brace tree and `fn`-item attribution — because they reason about
//! scopes: which function an allocation is in, whether a lock guard is still
//! live at a parallel call, whether a chunked stage sits inside a span.
//!
//! Token-aware passes:
//!
//! * **hot-path-alloc** — allocating constructs (`Vec::new`, `vec![`,
//!   `with_capacity`, `.collect()`, `Box::new`, `String::from`, `format!`,
//!   `.to_vec()`, `.to_owned()`, `.to_string()`) are banned in [`HOT_PATHS`]
//!   files and in any function marked hot (see the directive grammar below);
//!   per-site waivers must carry a reason.
//! * **atomic-ordering** — every memory-ordering use site (`Relaxed`,
//!   `Acquire`, `Release`, `AcqRel`, `SeqCst`) must carry an `ORDERING:`
//!   justification in the contiguous comment block above, mirroring the
//!   `SAFETY:` mechanism. A justified `use` import covers the file's bare
//!   variant uses; explicit `Ordering::X` paths justify per site (or per
//!   contiguous cluster of sites). The pass also produces the inventory
//!   rows for the reviewable artifact (`cargo xtask lint --inventory`).
//! * **lock-across-parallel** — a `.lock()`/`.read()`/`.write()` guard
//!   binding still live (same brace scope, not dropped or shadowed) at a
//!   call to `run_chunked`/`run_chunked_plan`/`join` is flagged: holding a
//!   lock across a parallel region is the deadlock-by-construction shape
//!   the race checker cannot see (it only models the four kernels).
//! * **span-coverage** — every `run_chunked`/`run_chunked_plan` call site
//!   outside `parcsr-runtime` (and outside the vendored shims) must be
//!   lexically inside a `span!`/`with_span`/`enter` scope, so new parallel
//!   stages cannot dodge the trace analytics CI gates on.
//!
//! Directive grammar (one directive per comment line): `LINT: hot` in the
//! comment block above a `fn` marks that function hot for the allocation
//! ban; `LINT: alloc-ok(reason)` on an allocation's line or in the block
//! above waives that site — an empty or missing reason is itself a
//! violation (**lint-directive**), so every waiver in the tree is
//! explained. Everything from the first `#[cfg(test)]` line on is exempt
//! from all passes (test code may allocate and unwrap freely).

use std::collections::{BTreeMap, BTreeSet};

use parcsr_obs::json::Json;

use crate::lexer::{Kind, Lexed, Token};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (unix separators).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Kebab-case rule slug (stable; used by fixtures and the JSON report).
    pub rule: &'static str,
    /// Human-readable rule message.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One memory-ordering use site, for the reviewable inventory artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderingSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Distinct ordering variants used on the line, in order of appearance.
    pub orderings: Vec<String>,
    /// The `ORDERING:` justification text, if present.
    pub justification: Option<String>,
    /// For bare (imported) variant uses with no local justification: the
    /// line of the `use` import whose justification covers this site.
    pub via_import: Option<usize>,
    /// True if the site is itself a `use` import line.
    pub is_import: bool,
}

/// One explained allocation waiver (`LINT: alloc-ok(reason)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the waiver comment sits on.
    pub line: usize,
    /// The reason string inside the parentheses.
    pub reason: String,
}

/// Everything the analysis produces for one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Rule violations.
    pub violations: Vec<Violation>,
    /// Memory-ordering inventory rows.
    pub ordering_sites: Vec<OrderingSite>,
    /// Explained allocation waivers.
    pub waivers: Vec<Waiver>,
}

/// Aggregated analysis over the workspace, for the `--json` report and the
/// `--inventory` artifact.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Number of files analyzed.
    pub files: usize,
    /// All violations, in file walk order.
    pub violations: Vec<Violation>,
    /// All memory-ordering inventory rows.
    pub ordering_sites: Vec<OrderingSite>,
    /// All explained allocation waivers.
    pub waivers: Vec<Waiver>,
}

impl WorkspaceReport {
    /// Folds one file's report in.
    pub fn merge(&mut self, report: FileReport) {
        self.files += 1;
        self.violations.extend(report.violations);
        self.ordering_sites.extend(report.ordering_sites);
        self.waivers.extend(report.waivers);
    }

    /// The machine-readable report for `cargo xtask lint --json OUT`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let violations = self
            .violations
            .iter()
            .map(|v| {
                Json::Object(vec![
                    ("file".into(), Json::Str(v.file.clone())),
                    ("line".into(), Json::Int(v.line as i64)),
                    ("rule".into(), Json::Str(v.rule.to_string())),
                    ("message".into(), Json::Str(v.message.clone())),
                ])
            })
            .collect();
        let waivers = self
            .waivers
            .iter()
            .map(|w| {
                Json::Object(vec![
                    ("file".into(), Json::Str(w.file.clone())),
                    ("line".into(), Json::Int(w.line as i64)),
                    ("reason".into(), Json::Str(w.reason.clone())),
                ])
            })
            .collect();
        let inventory = self
            .ordering_sites
            .iter()
            .map(|s| {
                Json::Object(vec![
                    ("file".into(), Json::Str(s.file.clone())),
                    ("line".into(), Json::Int(s.line as i64)),
                    (
                        "orderings".into(),
                        Json::Array(s.orderings.iter().cloned().map(Json::Str).collect()),
                    ),
                    (
                        "justification".into(),
                        s.justification.clone().map_or(Json::Null, Json::Str),
                    ),
                    (
                        "via_import_line".into(),
                        s.via_import.map_or(Json::Null, |l| Json::Int(l as i64)),
                    ),
                    ("import".into(), Json::Bool(s.is_import)),
                ])
            })
            .collect();
        Json::Object(vec![
            ("violations".into(), Json::Array(violations)),
            ("waivers".into(), Json::Array(waivers)),
            ("ordering_inventory".into(), Json::Array(inventory)),
            (
                "summary".into(),
                Json::Object(vec![
                    ("files".into(), Json::Int(self.files as i64)),
                    ("violations".into(), Json::Int(self.violations.len() as i64)),
                    ("waivers".into(), Json::Int(self.waivers.len() as i64)),
                    (
                        "ordering_sites".into(),
                        Json::Int(self.ordering_sites.len() as i64),
                    ),
                ]),
            ),
        ])
    }

    /// The atomic-ordering inventory as a markdown table (the reviewable
    /// artifact CI uploads next to `lint.json`).
    #[must_use]
    pub fn inventory_markdown(&self) -> String {
        let mut out = String::from(
            "# Atomic-ordering inventory\n\n\
             Every memory-ordering use site in the workspace (tests exempt), \
             with its `ORDERING:` justification. Bare variant uses covered by \
             a justified `use` import reference the import line.\n\n\
             | File | Line | Ordering | Justification |\n\
             |------|-----:|----------|---------------|\n",
        );
        for s in &self.ordering_sites {
            let just = match (&s.justification, s.via_import) {
                (Some(j), _) => j.clone(),
                (None, Some(l)) => format!("via `use` import on line {l}"),
                (None, None) => "**(missing)**".to_string(),
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                s.file,
                s.line,
                s.orderings.join(", "),
                just.replace('|', "\\|"),
            ));
        }
        out
    }
}

/// Files allowed to contain `unsafe` code. Everything else in the
/// workspace must be 100% safe Rust. `crates/obs/src/mem.rs` owns the
/// counting `GlobalAlloc` (the trait itself is unsafe to implement).
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/graph/src/sort.rs",
    "crates/obs/src/mem.rs",
    "shims/parking_lot/src/lib.rs",
];

/// Hot query-path files: panicking constructs and allocating constructs are
/// banned everywhere in these files — they run per neighbor-list lookup and
/// must degrade via `Option`/saturation and reuse caller buffers.
pub const HOT_PATHS: &[&str] = &["crates/core/src/query.rs", "crates/bitpack/src/cursor.rs"];

/// Files that must carry `#![deny(unsafe_op_in_unsafe_fn)]` (the crate
/// roots owning the allowlisted `unsafe` code).
pub const DENY_UNSAFE_OP_ROOTS: &[&str] = &[
    "crates/graph/src/lib.rs",
    "crates/obs/src/lib.rs",
    "shims/parking_lot/src/lib.rs",
];

/// Path prefixes exempt from the span-coverage pass: the runtime crate
/// *defines* the chunked executors (and spans them internally), and the
/// vendored shims are stand-ins for external crates, outside the obs
/// contract.
const SPAN_COVERAGE_EXEMPT: &[&str] = &["crates/runtime/", "shims/"];

/// True if the contiguous comment/attribute block immediately above line
/// `i` (plus line `i` itself) carries a `SAFETY:` or `# Safety` marker. A
/// blank or code line ends the block: a safety comment separated from its
/// `unsafe` by unrelated code is stale and does not count.
fn safety_documented(raw_lines: &[&str], i: usize) -> bool {
    let marker = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    if marker(raw_lines[i]) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim_start();
        if comment_or_attr(t) {
            if marker(t) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// True if a trimmed line is part of a comment/attribute block.
fn comment_or_attr(t: &str) -> bool {
    t.starts_with("//") || t.starts_with("#[") || t.starts_with("/*") || t.starts_with('*')
}

/// Panicking or unchecked constructs banned on the hot query path.
const HOT_PATH_BANS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    "get_unchecked",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "dbg!(",
];

/// Strips line/block comments and string literals, preserving line
/// structure, so token matching never fires inside prose or fixtures.
/// `char` literals survive (a lone `'"'` would otherwise derail the
/// scanner, and no rule token fits in a char literal anyway).
fn strip_code(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    for line in text.lines() {
        let mut kept = String::with_capacity(line.len());
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_string = false;
        let mut raw_hashes: Option<usize> = None;
        while i < bytes.len() {
            if in_block_comment {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
            } else if in_string {
                match bytes[i] {
                    b'\\' if raw_hashes.is_none() => i += 2,
                    b'"' => {
                        let closes = match raw_hashes {
                            None => true,
                            Some(h) => {
                                bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= h
                            }
                        };
                        if closes {
                            i += 1 + raw_hashes.take().unwrap_or(0);
                            in_string = false;
                        } else {
                            i += 1;
                        }
                    }
                    _ => i += 1,
                }
            } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'/') {
                break; // line comment: drop the rest
            } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                in_block_comment = true;
                i += 2;
            } else if bytes[i] == b'"' {
                in_string = true;
                i += 1;
            } else if bytes[i] == b'r'
                && bytes.get(i + 1).is_some_and(|&b| b == b'"' || b == b'#')
                && !kept
                    .chars()
                    .last()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                let hashes = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
                if bytes.get(i + 1 + hashes) == Some(&b'"') {
                    raw_hashes = Some(hashes);
                    in_string = true;
                    i += 2 + hashes;
                } else {
                    kept.push('r');
                    i += 1;
                }
            } else {
                kept.push(bytes[i] as char);
                i += 1;
            }
        }
        out.push(kept);
    }
    out
}

/// Index of the first line from which test-module exemptions apply, or
/// `lines.len()` if the file has no test module.
fn test_cutoff(raw_lines: &[&str]) -> usize {
    raw_lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(raw_lines.len())
}

/// True if the stripped line contains `unsafe` as a standalone token.
fn has_unsafe_token(stripped: &str) -> bool {
    let bytes = stripped.as_bytes();
    let mut start = 0;
    while let Some(pos) = stripped[start..].find("unsafe") {
        let at = start + pos;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let after = at + "unsafe".len();
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

// ---------------------------------------------------------------------------
// Directive grammar
// ---------------------------------------------------------------------------

/// The comment prefix that introduces a lint directive. Built with
/// `concat!` so this source file never contains the literal byte sequence
/// and cannot trip its own directive scan.
const DIRECTIVE_PREFIX: &str = concat!("//", " LINT:");

/// A parsed lint directive.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    /// Marks the function below as hot for the allocation ban.
    Hot,
    /// Waives one allocation site, with the mandatory reason.
    AllocOk(String),
}

/// Parses a lint directive from a raw source line. `None` means the line
/// carries no directive; `Some(Err(_))` means a malformed or unknown one.
fn parse_directive(line: &str) -> Option<Result<Directive, String>> {
    let pos = line.find(DIRECTIVE_PREFIX)?;
    let rest = line[pos + DIRECTIVE_PREFIX.len()..].trim();
    let word_end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-' || c == '_'))
        .unwrap_or(rest.len());
    match &rest[..word_end] {
        "hot" => Some(Ok(Directive::Hot)),
        "alloc-ok" => {
            let after = rest[word_end..].trim_start();
            let reason = after
                .strip_prefix('(')
                .and_then(|a| a.rfind(')').map(|p| a[..p].trim()));
            match reason {
                Some(r) if !r.is_empty() => Some(Ok(Directive::AllocOk(r.to_string()))),
                _ => Some(Err(
                    "`LINT: alloc-ok` waiver without a reason; every waiver must \
                     explain itself, e.g. `LINT: alloc-ok(output buffer is the API \
                     contract)`"
                        .to_string(),
                )),
            }
        }
        other => Some(Err(format!(
            "unknown `LINT:` directive `{other}` (known: `hot`, `alloc-ok(reason)`)"
        ))),
    }
}

/// Validates every directive in the file and collects explained waivers.
fn directive_pass(
    file: &str,
    raw_lines: &[&str],
    cutoff: usize,
    out: &mut Vec<Violation>,
    waivers: &mut Vec<Waiver>,
) {
    for (i, line) in raw_lines.iter().enumerate().take(cutoff) {
        match parse_directive(line) {
            None | Some(Ok(Directive::Hot)) => {}
            Some(Ok(Directive::AllocOk(reason))) => waivers.push(Waiver {
                file: file.to_string(),
                line: i + 1,
                reason,
            }),
            Some(Err(message)) => out.push(Violation {
                file: file.to_string(),
                line: i + 1,
                rule: "lint-directive",
                message,
            }),
        }
    }
}

/// True if line `line` (1-based) carries a given directive on itself or in
/// the contiguous comment/attribute block directly above.
fn directive_at_or_above(
    raw_lines: &[&str],
    line: usize,
    matches: impl Fn(&Directive) -> bool,
) -> bool {
    let hit = |l: &str| matches!(parse_directive(l), Some(Ok(d)) if matches(&d));
    if hit(raw_lines[line - 1]) {
        return true;
    }
    let mut j = line - 1;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim_start();
        if comment_or_attr(t) {
            if hit(t) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

fn is_ident(t: Option<&Token>, s: &str) -> bool {
    t.is_some_and(|t| t.kind == Kind::Ident && t.text == s)
}

fn is_punct(t: Option<&Token>, s: &str) -> bool {
    t.is_some_and(|t| t.kind == Kind::Punct && t.text == s)
}

fn is_open(t: Option<&Token>, s: &str) -> bool {
    t.is_some_and(|t| t.kind == Kind::Open && t.text == s)
}

fn is_close(t: Option<&Token>, s: &str) -> bool {
    t.is_some_and(|t| t.kind == Kind::Close && t.text == s)
}

// ---------------------------------------------------------------------------
// Pass: hot-path allocation ban
// ---------------------------------------------------------------------------

/// Matches an allocating construct anchored at token `i`. Returns the line
/// to report and the display name.
fn alloc_hit(toks: &[Token], i: usize) -> Option<(usize, &'static str)> {
    let t = &toks[i];
    let n1 = toks.get(i + 1);
    let n2 = toks.get(i + 2);
    if t.kind == Kind::Ident {
        let what = match t.text.as_str() {
            "Vec" if is_punct(n1, "::") && is_ident(n2, "new") => "Vec::new",
            "Box" if is_punct(n1, "::") && is_ident(n2, "new") => "Box::new",
            "String" if is_punct(n1, "::") && is_ident(n2, "from") => "String::from",
            "vec" if is_punct(n1, "!") => "vec![…]",
            "format" if is_punct(n1, "!") => "format!",
            "with_capacity" if is_open(n1, "(") => "with_capacity",
            _ => return None,
        };
        Some((t.line, what))
    } else if t.kind == Kind::Punct && t.text == "." {
        let n = n1?;
        if n.kind != Kind::Ident {
            return None;
        }
        let what = match n.text.as_str() {
            "collect" => ".collect()",
            "to_vec" => ".to_vec()",
            "to_owned" => ".to_owned()",
            "to_string" => ".to_string()",
            _ => return None,
        };
        Some((n.line, what))
    } else {
        None
    }
}

/// The hot-path allocation ban: banned constructs in hot scopes must be
/// individually waived with an explained `alloc-ok` directive.
fn alloc_pass(
    file: &str,
    raw_lines: &[&str],
    lexed: &Lexed,
    cutoff: usize,
    out: &mut Vec<Violation>,
) {
    let file_hot = HOT_PATHS.contains(&file);
    let mut hot = vec![file_hot; lexed.scopes.len()];
    if !file_hot {
        for (id, s) in lexed.scopes.iter().enumerate() {
            if s.fn_name.is_some()
                && s.head_line <= raw_lines.len()
                && directive_at_or_above(raw_lines, s.head_line, |d| *d == Directive::Hot)
            {
                hot[id] = true;
            }
        }
        // Scopes are pushed parent-before-child, so one forward sweep
        // propagates hotness into nested closures and items.
        for id in 1..hot.len() {
            if let Some(p) = lexed.scopes[id].parent {
                hot[id] = hot[id] || hot[p];
            }
        }
        if hot.iter().all(|h| !h) {
            return;
        }
    }
    for i in 0..lexed.tokens.len() {
        let Some((line, what)) = alloc_hit(&lexed.tokens, i) else {
            continue;
        };
        if !hot[lexed.tokens[i].scope] || line > cutoff {
            continue;
        }
        if directive_at_or_above(raw_lines, line, |d| matches!(d, Directive::AllocOk(_))) {
            continue;
        }
        out.push(Violation {
            file: file.to_string(),
            line,
            rule: "hot-path-alloc",
            message: format!(
                "allocating construct `{what}` in a hot-path function; hoist the \
                 buffer to the caller or waive the site with an explained \
                 `LINT: alloc-ok(reason)`"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Pass: atomic-ordering audit
// ---------------------------------------------------------------------------

const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The `ORDERING:` justification for site line `line`, if present: on the
/// line's own trailing comment, or in the contiguous block above — where
/// lines that are themselves ordering sites do not break the block, so one
/// comment can justify a cluster of consecutive sites.
fn ordering_justification(
    raw_lines: &[&str],
    site_lines: &BTreeSet<usize>,
    line: usize,
) -> Option<String> {
    let extract = |l: &str| {
        l.find("ORDERING:").map(|p| {
            l[p + "ORDERING:".len()..]
                .trim()
                .trim_end_matches("*/")
                .trim_end()
                .to_string()
        })
    };
    let own = raw_lines[line - 1];
    if let Some(slash) = own.find("//") {
        if let Some(j) = extract(&own[slash..]) {
            return Some(j);
        }
    }
    let mut i = line - 1;
    while i > 0 {
        i -= 1;
        let t = raw_lines[i].trim_start();
        if comment_or_attr(t) {
            if let Some(j) = extract(t) {
                return Some(j);
            }
        } else if !site_lines.contains(&(i + 1)) {
            break;
        }
    }
    None
}

/// The atomic-ordering audit: every use site justified, inventory emitted.
fn ordering_pass(
    file: &str,
    raw_lines: &[&str],
    lexed: &Lexed,
    cutoff: usize,
    out: &mut Vec<Violation>,
    sites_out: &mut Vec<OrderingSite>,
) {
    struct Acc {
        variants: Vec<String>,
        any_path: bool,
        in_use: bool,
    }
    let toks = &lexed.tokens;
    let mut acc: BTreeMap<usize, Acc> = BTreeMap::new();
    let mut in_use = false;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == Kind::Ident && t.text == "use" {
            in_use = true;
        } else if t.kind == Kind::Punct && t.text == ";" {
            in_use = false;
        }
        if t.kind == Kind::Ident && ORDERING_VARIANTS.contains(&t.text.as_str()) && t.line <= cutoff
        {
            let path =
                i >= 2 && is_punct(toks.get(i - 1), "::") && is_ident(toks.get(i - 2), "Ordering");
            let e = acc.entry(t.line).or_insert(Acc {
                variants: Vec::new(),
                any_path: false,
                in_use: false,
            });
            if !e.variants.contains(&t.text) {
                e.variants.push(t.text.clone());
            }
            e.any_path |= path;
            e.in_use |= in_use;
        }
    }
    if acc.is_empty() {
        return;
    }
    let site_lines: BTreeSet<usize> = acc.keys().copied().collect();
    let mut last_import: Option<usize> = None;
    for (line, a) in &acc {
        let just = ordering_justification(raw_lines, &site_lines, *line);
        let vars = a.variants.join(", ");
        let mut via = None;
        if a.in_use {
            if just.is_none() {
                out.push(Violation {
                    file: file.to_string(),
                    line: *line,
                    rule: "atomic-ordering",
                    message: format!(
                        "`use` importing atomic ordering `{vars}` without an \
                         `ORDERING:` justification comment above; the import's \
                         justification covers the file's bare uses"
                    ),
                });
            }
            last_import = Some(*line);
        } else if just.is_none() {
            if !a.any_path && last_import.is_some() {
                via = last_import;
            } else {
                out.push(Violation {
                    file: file.to_string(),
                    line: *line,
                    rule: "atomic-ordering",
                    message: format!(
                        "atomic ordering `{vars}` without an `ORDERING:` \
                         justification in the comment block directly above"
                    ),
                });
            }
        }
        sites_out.push(OrderingSite {
            file: file.to_string(),
            line: *line,
            orderings: a.variants.clone(),
            justification: just,
            via_import: via,
            is_import: a.in_use,
        });
    }
}

// ---------------------------------------------------------------------------
// Pass: lock guard live across a parallel region
// ---------------------------------------------------------------------------

const GUARD_METHODS: &[&str] = &["lock", "read", "write"];
/// Adapters that pass the guard through unchanged; anything else consumes
/// it within the statement (so the binding is not a guard).
const GUARD_CHAIN: &[&str] = &["unwrap", "expect", "unwrap_or_else"];
const PARALLEL_CALLEES: &[&str] = &["run_chunked", "run_chunked_plan", "join"];

struct GuardBinding {
    name: String,
    line: usize,
}

/// Parses the `let` statement starting at token `i`. Returns
/// `(binding name, guard)` where `guard` is `Some` iff the statement binds
/// a live lock/rwlock guard: a simple `let [mut] name = …;` whose RHS is
/// not a deref copy, calls `.lock()`/`.read()`/`.write()` with no
/// arguments, and passes the guard through nothing but unwrap adapters.
fn let_binding(toks: &[Token], i: usize) -> Option<(String, Option<GuardBinding>)> {
    let mut j = i + 1;
    if is_ident(toks.get(j), "mut") {
        j += 1;
    }
    let name_tok = toks.get(j)?;
    if name_tok.kind != Kind::Ident {
        return None; // tuple/struct pattern: not a simple binding
    }
    let name = name_tok.text.clone();
    // Scan to the statement-terminating `;` at delimiter depth 0, noting
    // the first depth-0 `=` (the binding's).
    let mut depth = 0usize;
    let mut eq = None;
    let mut end = None;
    let mut k = j + 1;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            Kind::Open => depth += 1,
            Kind::Close => {
                if depth == 0 {
                    return None; // ran off the enclosing scope: malformed
                }
                depth -= 1;
            }
            Kind::Punct if depth == 0 && t.text == ";" => {
                end = Some(k);
                break;
            }
            Kind::Punct if depth == 0 && t.text == "=" && eq.is_none() => {
                eq = Some(k);
            }
            _ => {}
        }
        k += 1;
    }
    let (eq, end) = (eq?, end?);
    let rhs = &toks[eq + 1..end];
    if is_punct(rhs.first(), "*") {
        return Some((name, None)); // deref copy: the guard dies in-statement
    }
    // Last empty-args guard-method call in the chain.
    let mut after_call = None;
    let mut k = 0;
    while k + 3 < rhs.len() {
        if is_punct(rhs.get(k), ".")
            && rhs
                .get(k + 1)
                .is_some_and(|t| t.kind == Kind::Ident && GUARD_METHODS.contains(&t.text.as_str()))
            && is_open(rhs.get(k + 2), "(")
            && is_close(rhs.get(k + 3), ")")
        {
            after_call = Some(k + 4);
        }
        k += 1;
    }
    let Some(mut k) = after_call else {
        return Some((name, None));
    };
    // Everything after the guard call must be a pass-through chain.
    while k < rhs.len() {
        let adapter = is_punct(rhs.get(k), ".")
            && rhs
                .get(k + 1)
                .is_some_and(|t| t.kind == Kind::Ident && GUARD_CHAIN.contains(&t.text.as_str()))
            && is_open(rhs.get(k + 2), "(");
        if !adapter {
            return Some((name, None)); // consumed (indexed, method call, …)
        }
        let mut d = 1usize;
        k += 3;
        while k < rhs.len() && d > 0 {
            match rhs[k].kind {
                Kind::Open => d += 1,
                Kind::Close => d -= 1,
                _ => {}
            }
            k += 1;
        }
    }
    let line = toks[i].line;
    Some((name.clone(), Some(GuardBinding { name, line })))
}

/// Flags `run_chunked`/`run_chunked_plan`/`join` calls made while a lock
/// guard bound in an enclosing (still-open) scope is live.
fn lock_pass(file: &str, lexed: &Lexed, cutoff: usize, out: &mut Vec<Violation>) {
    let toks = &lexed.tokens;
    let mut frames: Vec<Vec<GuardBinding>> = vec![Vec::new()];
    let kill = |frames: &mut Vec<Vec<GuardBinding>>, name: &str| {
        for f in frames.iter_mut() {
            f.retain(|g| g.name != name);
        }
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        match t.kind {
            Kind::Open if t.text == "{" => frames.push(Vec::new()),
            Kind::Close if t.text == "}" && frames.len() > 1 => {
                frames.pop();
            }
            Kind::Ident
                if t.text == "drop"
                    && is_open(toks.get(i + 1), "(")
                    && toks.get(i + 2).is_some_and(|t| t.kind == Kind::Ident)
                    && is_close(toks.get(i + 3), ")") =>
            {
                let name = toks[i + 2].text.clone();
                kill(&mut frames, &name);
            }
            Kind::Ident if t.text == "let" && t.line <= cutoff => {
                if let Some((name, guard)) = let_binding(toks, i) {
                    // Shadowing ends the old binding's tracked liveness.
                    kill(&mut frames, &name);
                    if let Some(g) = guard {
                        frames.last_mut().expect("root frame").push(g);
                    }
                }
            }
            Kind::Ident
                if PARALLEL_CALLEES.contains(&t.text.as_str())
                    && is_open(toks.get(i + 1), "(")
                    && t.line <= cutoff =>
            {
                let prev = if i > 0 { toks.get(i - 1) } else { None };
                // `x.join(…)` is string/thread/path join; `fn join(` is a
                // definition. Neither enters a parallel region here.
                if is_punct(prev, ".") || is_ident(prev, "fn") {
                    continue;
                }
                for g in frames.iter().flatten() {
                    out.push(Violation {
                        file: file.to_string(),
                        line: t.line,
                        rule: "lock-across-parallel",
                        message: format!(
                            "`{}` called while lock guard `{}` (bound on line {}) is \
                             still live; drop or scope the guard before entering the \
                             parallel region",
                            t.text, g.name, g.line
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Pass: span coverage of chunked parallel stages
// ---------------------------------------------------------------------------

const SPAN_OPENERS: &[&str] = &["with_span", "with_span_args", "enter", "enter_with_args"];

/// Flags `run_chunked`/`run_chunked_plan` call sites that are not lexically
/// inside a span scope within their enclosing function.
fn span_pass(file: &str, lexed: &Lexed, cutoff: usize, out: &mut Vec<Violation>) {
    if SPAN_COVERAGE_EXEMPT.iter().any(|p| file.starts_with(p)) {
        return;
    }
    struct Frame {
        has_span: bool,
        is_fn: bool,
    }
    let toks = &lexed.tokens;
    let mut stack = vec![Frame {
        has_span: false,
        is_fn: false,
    }];
    let mut next_scope = 1usize;
    for i in 0..toks.len() {
        let t = &toks[i];
        match t.kind {
            Kind::Open if t.text == "{" => {
                // Brace scopes are created in token order, so the k-th `{`
                // is scope k in the lexed brace tree.
                let is_fn = lexed
                    .scopes
                    .get(next_scope)
                    .is_some_and(|s| s.fn_name.is_some());
                next_scope += 1;
                stack.push(Frame {
                    has_span: false,
                    is_fn,
                });
            }
            Kind::Close if t.text == "}" && stack.len() > 1 => {
                stack.pop();
            }
            Kind::Ident => {
                let n1 = toks.get(i + 1);
                let callish = n1.is_some_and(|n| n.kind == Kind::Open && n.text == "(");
                if (SPAN_OPENERS.contains(&t.text.as_str()) && callish)
                    || (t.text == "span" && is_punct(n1, "!"))
                {
                    stack.last_mut().expect("root frame").has_span = true;
                } else if (t.text == "run_chunked" || t.text == "run_chunked_plan")
                    && callish
                    && t.line <= cutoff
                    && !is_ident(if i > 0 { toks.get(i - 1) } else { None }, "fn")
                {
                    let mut covered = false;
                    for f in stack.iter().rev() {
                        if f.has_span {
                            covered = true;
                            break;
                        }
                        if f.is_fn {
                            break; // span scopes do not leak across fn items
                        }
                    }
                    if !covered {
                        out.push(Violation {
                            file: file.to_string(),
                            line: t.line,
                            rule: "span-coverage",
                            message: format!(
                                "`{}` outside any `span!`/`with_span`/`enter` scope; \
                                 wrap the stage in a span so trace analytics (and the \
                                 CI utilization gate) can attribute its workers",
                                t.text
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs every pass over one source file; `file` is the workspace-relative
/// path with unix separators.
#[must_use]
pub fn analyze_file(file: &str, text: &str) -> FileReport {
    let raw_lines: Vec<&str> = text.lines().collect();
    let stripped = strip_code(text);
    let cutoff = test_cutoff(&raw_lines);
    let mut report = FileReport::default();
    let out = &mut report.violations;

    let allowlisted = UNSAFE_ALLOWLIST.contains(&file);
    for (i, code) in stripped.iter().enumerate().take(cutoff) {
        if has_unsafe_token(code) {
            if !allowlisted {
                out.push(Violation {
                    file: file.to_string(),
                    line: i + 1,
                    rule: "unsafe-allowlist",
                    message: "`unsafe` outside the allowlist (crates/graph/src/sort.rs, \
                              crates/obs/src/mem.rs, shims/parking_lot/src/lib.rs); \
                              rewrite safely or move the code behind an allowlisted module"
                        .to_string(),
                });
            } else if !safety_documented(&raw_lines, i) {
                out.push(Violation {
                    file: file.to_string(),
                    line: i + 1,
                    rule: "safety-comment",
                    message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc \
                              section) in the comment block directly above"
                        .to_string(),
                });
            }
        }
    }

    if HOT_PATHS.contains(&file) {
        for (i, code) in stripped.iter().enumerate().take(cutoff) {
            for ban in HOT_PATH_BANS {
                if code.contains(ban) {
                    out.push(Violation {
                        file: file.to_string(),
                        line: i + 1,
                        rule: "hot-path-panic",
                        message: format!(
                            "`{}` on the hot query path; return Option / saturate instead",
                            ban.trim_start_matches('.').trim_end_matches('(')
                        ),
                    });
                }
            }
        }
    }

    if DENY_UNSAFE_OP_ROOTS.contains(&file) && !text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
        out.push(Violation {
            file: file.to_string(),
            line: 1,
            rule: "deny-unsafe-op",
            message: "crate root must carry #![deny(unsafe_op_in_unsafe_fn)]".to_string(),
        });
    }

    // Token-aware passes share one lex of the file. The cutoff is expressed
    // as "last linted line": a token on line L is exempt iff L > cutoff.
    let lexed = Lexed::lex(text);
    directive_pass(file, &raw_lines, cutoff, out, &mut report.waivers);
    alloc_pass(file, &raw_lines, &lexed, cutoff, out);
    ordering_pass(
        file,
        &raw_lines,
        &lexed,
        cutoff,
        out,
        &mut report.ordering_sites,
    );
    lock_pass(file, &lexed, cutoff, out);
    span_pass(file, &lexed, cutoff, out);

    report.violations.sort_by_key(|v| v.line);
    report
}

/// Lints one source file, returning only the violations (the full report,
/// including inventory rows and waivers, comes from [`analyze_file`]).
#[must_use]
pub fn lint_file(file: &str, text: &str) -> Vec<Violation> {
    analyze_file(file, text).violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const SORT_RS: &str = "crates/graph/src/sort.rs";
    const ANY_RS: &str = "crates/fixture/src/lib.rs";
    // Span-coverage-exempt path: lock-pass tests use it so their bare
    // `run_chunked_plan` calls exercise only the guard-liveness rule.
    const RT_RS: &str = "crates/runtime/src/stage.rs";

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn documented_unsafe_in_allowlisted_file_passes() {
        let src = "\
// SAFETY: writers touch disjoint indices.
unsafe impl Sync for T {}

fn caller(t: &T) {
    // SAFETY: index proven in bounds above.
    unsafe { t.write(0) };
}
";
        assert_eq!(lint_file(SORT_RS, src), []);
    }

    #[test]
    fn undocumented_unsafe_in_allowlisted_file_fails() {
        let src = "fn f(p: *mut u8) {\n    unsafe { p.write(0) };\n}\n";
        let v = lint_file(SORT_RS, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, "safety-comment");
    }

    #[test]
    fn safety_doc_section_counts_for_unsafe_fn() {
        let src = "\
/// # Safety
///
/// Caller must keep `i` in bounds.
#[inline]
unsafe fn write(i: usize) {}
";
        assert_eq!(lint_file(SORT_RS, src), []);
    }

    #[test]
    fn stale_safety_comment_separated_by_blank_line_fails() {
        // A blank line ends the comment block: the marker no longer
        // attaches to the `unsafe` below it.
        let src = "// SAFETY: far away.\n\nunsafe fn f() {}\n";
        assert_eq!(lint_file(SORT_RS, src).len(), 1);
    }

    #[test]
    fn stale_safety_comment_separated_by_code_fails() {
        let src = "// SAFETY: documents the wrong thing.\nfn g() {}\nunsafe fn f() {}\n";
        assert_eq!(lint_file(SORT_RS, src).len(), 1);
    }

    #[test]
    fn long_safety_block_with_interleaved_attribute_passes() {
        // The marker may sit many lines up, as long as the block of
        // comments/attributes between it and the `unsafe` is contiguous.
        let mut src = String::from("// SAFETY: a long argument follows.\n");
        src.push_str(&"// more detail.\n".repeat(8));
        src.push_str("#[inline]\nunsafe fn f() {}\n");
        assert_eq!(lint_file(SORT_RS, &src).len(), 0);
    }

    #[test]
    fn any_unsafe_outside_allowlist_fails() {
        let src = "// SAFETY: even documented.\nunsafe fn f() {}\n";
        let v = lint_file("crates/core/src/query.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unsafe-allowlist");
    }

    #[test]
    fn unsafe_in_comments_strings_and_idents_is_ignored() {
        let src = "\
// this comment says unsafe and is fine
/* so does unsafe this one */
#![deny(unsafe_op_in_unsafe_fn)]
const MSG: &str = \"unsafe\";
const RAW: &str = r#\"unsafe { }\"#;
fn not_unsafe_fn() {}
";
        assert_eq!(lint_file("crates/core/src/lib.rs", src), []);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
fn ok() {}
#[cfg(test)]
mod tests {
    fn f(p: *mut u8) { unsafe { p.write(0) } }
}
";
        assert_eq!(lint_file("crates/core/src/lib.rs", src), []);
    }

    #[test]
    fn hot_path_bans_panicking_constructs() {
        let src = "\
fn lookup(v: &[u32], i: usize) -> u32 {
    let x = v.get(i);
    if i > 10 { panic!(\"bad\") }
    *x.unwrap_or(&0)
}
";
        let v = lint_file("crates/core/src/query.rs", src);
        assert_eq!(rules(&v), ["hot-path-panic"]);
        assert!(v[0].message.contains("panic!"));
    }

    #[test]
    fn hot_path_bans_do_not_apply_elsewhere() {
        let src = "fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n";
        assert_eq!(lint_file("crates/core/src/builder.rs", src), []);
    }

    #[test]
    fn deny_attr_required_in_unsafe_crate_roots() {
        let v = lint_file("crates/graph/src/lib.rs", "//! docs\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "deny-unsafe-op");
        let clean = "#![deny(unsafe_op_in_unsafe_fn)]\n//! docs\n";
        assert_eq!(lint_file("crates/graph/src/lib.rs", clean), []);
    }

    #[test]
    fn display_is_file_line_rule_message() {
        let v = Violation {
            file: "a/b.rs".into(),
            line: 7,
            rule: "hot-path-alloc",
            message: "nope".into(),
        };
        assert_eq!(v.to_string(), "a/b.rs:7: [hot-path-alloc] nope");
    }

    // -- hot-path-alloc ----------------------------------------------------

    #[test]
    fn alloc_banned_in_hot_file() {
        let src = "\
fn decode(n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    out.extend((0..n as u32).collect::<Vec<_>>());
    out
}
";
        let v = lint_file("crates/bitpack/src/cursor.rs", src);
        assert_eq!(rules(&v), ["hot-path-alloc", "hot-path-alloc"]);
        assert!(v[0].message.contains("with_capacity"), "{}", v[0]);
        assert!(v[1].message.contains(".collect()"), "{}", v[1]);
    }

    #[test]
    fn alloc_waiver_with_reason_passes_and_is_recorded() {
        let src = "\
fn decode(n: usize) -> Vec<u32> {
    // LINT: alloc-ok(result vector is the API contract)
    let mut out = Vec::with_capacity(n);
    out
}
";
        let r = analyze_file("crates/bitpack/src/cursor.rs", src);
        assert_eq!(r.violations, []);
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].reason, "result vector is the API contract");
    }

    #[test]
    fn alloc_waiver_on_same_line_passes() {
        let src =
            "fn f() { let v = vec![0u32; 4]; } // LINT: alloc-ok(cold setup, not per-lookup)\n";
        assert_eq!(lint_file("crates/core/src/query.rs", src), []);
    }

    #[test]
    fn alloc_waiver_without_reason_is_a_violation() {
        let src = "\
fn decode() {
    // LINT: alloc-ok()
    let v = Vec::new();
}
";
        let v = lint_file("crates/bitpack/src/cursor.rs", src);
        // The malformed waiver does not waive, and is itself flagged.
        assert_eq!(rules(&v), ["lint-directive", "hot-path-alloc"]);
    }

    #[test]
    fn unknown_directive_is_a_violation() {
        let src = "fn f() {}\n// LINT: allocok(typo)\n";
        let v = lint_file(ANY_RS, src);
        assert_eq!(rules(&v), ["lint-directive"]);
        assert!(v[0].message.contains("allocok"), "{}", v[0]);
    }

    #[test]
    fn hot_marker_extends_ban_to_any_file() {
        let src = "\
fn cold() -> Vec<u32> { Vec::new() }

// LINT: hot
fn warm(out: &mut Vec<u32>) {
    let extra = Vec::new();
    out.push(1);
}
";
        let v = lint_file(ANY_RS, src);
        assert_eq!(rules(&v), ["hot-path-alloc"]);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn hot_marker_covers_nested_closures() {
        let src = "\
// LINT: hot
fn warm(xs: &[u32]) -> u32 {
    xs.iter().map(|x| { format!(\"{x}\"); *x }).sum()
}
";
        let v = lint_file(ANY_RS, src);
        assert_eq!(rules(&v), ["hot-path-alloc"]);
        assert!(v[0].message.contains("format!"), "{}", v[0]);
    }

    #[test]
    fn alloc_tokens_in_raw_strings_and_comments_do_not_fire() {
        let src = "\
// LINT: hot
fn warm() -> &'static str {
    // Vec::new in a comment is fine.
    r#\"vec![ Box::new String::from .collect() \"#
}
";
        assert_eq!(lint_file(ANY_RS, src), []);
    }

    #[test]
    fn alloc_in_test_module_of_hot_file_is_exempt() {
        let src = "\
fn fine() -> u32 { 0 }
#[cfg(test)]
mod tests {
    fn helper() -> Vec<u32> { (0..4).collect() }
}
";
        assert_eq!(lint_file("crates/core/src/query.rs", src), []);
    }

    // -- atomic-ordering ---------------------------------------------------

    #[test]
    fn ordering_site_without_justification_fails() {
        let src = "\
fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
";
        let v = lint_file(ANY_RS, src);
        assert_eq!(rules(&v), ["atomic-ordering"]);
        assert!(v[0].message.contains("Relaxed"), "{}", v[0]);
    }

    #[test]
    fn ordering_site_with_justification_passes_and_is_inventoried() {
        let src = "\
fn bump(c: &AtomicU64) {
    // ORDERING: Relaxed; a monotone counter read only after join.
    c.fetch_add(1, Ordering::Relaxed);
}
";
        let r = analyze_file(ANY_RS, src);
        assert_eq!(r.violations, []);
        assert_eq!(r.ordering_sites.len(), 1);
        assert_eq!(
            r.ordering_sites[0].justification.as_deref(),
            Some("Relaxed; a monotone counter read only after join.")
        );
        assert_eq!(r.ordering_sites[0].orderings, ["Relaxed"]);
    }

    #[test]
    fn ordering_cluster_shares_one_justification() {
        let src = "\
fn publish(a: &AtomicU64, b: &AtomicU64) {
    // ORDERING: Relaxed; both stores are sequenced before the join barrier.
    a.store(1, Ordering::Relaxed);
    b.store(2, Ordering::Relaxed);
}
";
        let r = analyze_file(ANY_RS, src);
        assert_eq!(r.violations, []);
        assert_eq!(r.ordering_sites.len(), 2);
        assert!(r.ordering_sites.iter().all(|s| s.justification.is_some()));
    }

    #[test]
    fn justified_import_covers_bare_uses() {
        let src = "\
// ORDERING: Relaxed throughout; counters are read only after the join.
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Relaxed);
}
";
        let r = analyze_file(ANY_RS, src);
        assert_eq!(r.violations, []);
        assert_eq!(r.ordering_sites.len(), 2);
        assert!(r.ordering_sites[0].is_import);
        assert_eq!(r.ordering_sites[1].via_import, Some(2));
    }

    #[test]
    fn unjustified_import_fails_once_not_per_use() {
        let src = "\
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Relaxed);
    c.fetch_add(2, Relaxed);
}
";
        let v = lint_file(ANY_RS, src);
        assert_eq!(rules(&v), ["atomic-ordering"]);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn explicit_path_needs_local_justification_despite_import() {
        let src = "\
// ORDERING: Relaxed; see module docs.
use std::sync::atomic::Ordering;

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::SeqCst);
}
";
        let v = lint_file(ANY_RS, src);
        assert_eq!(rules(&v), ["atomic-ordering"]);
        assert!(v[0].message.contains("SeqCst"), "{}", v[0]);
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_site() {
        let src = "\
fn f(a: u32, b: u32) -> std::cmp::Ordering {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => std::cmp::Ordering::Less,
        o => o,
    }
}
";
        let r = analyze_file(ANY_RS, src);
        assert_eq!(r.violations, []);
        assert!(r.ordering_sites.is_empty());
    }

    // -- lock-across-parallel ----------------------------------------------

    #[test]
    fn guard_live_at_run_chunked_fails() {
        let src = "\
fn stage(m: &Mutex<u32>, plan: Vec<Chunk>) {
    let g = m.lock().unwrap();
    run_chunked_plan(\"s\", plan, |c| c.index);
}
";
        let v = lint_file(RT_RS, src);
        assert_eq!(rules(&v), ["lock-across-parallel"]);
        assert!(v[0].message.contains("`g`"), "{}", v[0]);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn guard_dropped_before_parallel_passes() {
        let src = "\
fn stage(m: &Mutex<u32>, plan: Vec<Chunk>) {
    let g = m.lock().unwrap();
    drop(g);
    run_chunked_plan(\"s\", plan, |c| c.index);
}
";
        assert_eq!(lint_file(RT_RS, src), []);
    }

    #[test]
    fn guard_scoped_in_block_passes() {
        let src = "\
fn stage(m: &Mutex<u32>, plan: Vec<Chunk>) {
    {
        let g = m.lock().unwrap();
        *g;
    }
    run_chunked_plan(\"s\", plan, |c| c.index);
}
";
        assert_eq!(lint_file(RT_RS, src), []);
    }

    #[test]
    fn shadowed_guard_ends_tracked_liveness() {
        let src = "\
fn stage(m: &Mutex<u32>, plan: Vec<Chunk>) {
    let g = m.lock().unwrap();
    let g = 0u32;
    run_chunked_plan(\"s\", plan, |c| c.index + g);
}
";
        assert_eq!(lint_file(RT_RS, src), []);
    }

    #[test]
    fn value_consumed_in_statement_is_not_a_guard() {
        // The guard dies at the end of its own statement in all of these.
        let src = "\
fn stage(m: &Mutex<Vec<u32>>, plan: Vec<Chunk>) {
    let len = m.lock().unwrap().len();
    let copied = *m.lock().unwrap();
    let first = (*m.lock().unwrap()).first();
    run_chunked_plan(\"s\", plan, |c| c.index + len);
}
";
        assert_eq!(lint_file(RT_RS, src), []);
    }

    #[test]
    fn dotted_and_definition_joins_are_not_parallel_calls() {
        let src = "\
fn join(a: u32) -> u32 { a }
fn f(h: std::thread::JoinHandle<()>, m: &Mutex<u32>) {
    let g = m.lock().unwrap();
    h.join();
    let p = std::path::Path::new(\"a\").join(\"b\");
}
";
        assert_eq!(lint_file(ANY_RS, src), []);
    }

    #[test]
    fn rayon_join_with_live_guard_fails() {
        let src = "\
fn f(m: &Mutex<u32>) {
    let g = m.lock().unwrap();
    rayon::join(|| 1, || 2);
}
";
        let v = lint_file(ANY_RS, src);
        assert_eq!(rules(&v), ["lock-across-parallel"]);
    }

    #[test]
    fn rwlock_write_guard_is_tracked() {
        let src = "\
fn f(m: &RwLock<u32>, plan: Vec<Chunk>) {
    let w = m.write().unwrap();
    run_chunked_plan(\"s\", plan, |c| c.index);
}
";
        assert_eq!(rules(&lint_file(RT_RS, src)), ["lock-across-parallel"]);
    }

    #[test]
    fn io_write_with_args_is_not_a_guard() {
        let src = "\
fn f(w: &mut dyn std::io::Write, buf: &[u8], plan: Vec<Chunk>) {
    let n = w.write(buf).unwrap();
    run_chunked_plan(\"s\", plan, |c| c.index + n);
}
";
        assert_eq!(lint_file(RT_RS, src), []);
    }

    // -- span-coverage -----------------------------------------------------

    #[test]
    fn uncovered_run_chunked_fails() {
        let src = "\
fn stage(plan: Vec<Chunk>) {
    run_chunked_plan(\"s\", plan, |c| c.index);
}
";
        let v = lint_file(ANY_RS, src);
        assert_eq!(rules(&v), ["span-coverage"]);
    }

    #[test]
    fn guard_form_span_covers() {
        let src = "\
fn stage(plan: Vec<Chunk>) {
    let _span = parcsr_obs::enter_with_args(\"stage\", args);
    run_chunked_plan(\"s\", plan, |c| c.index);
}
";
        assert_eq!(lint_file(ANY_RS, src), []);
    }

    #[test]
    fn closure_form_span_covers_nested_call() {
        let src = "\
fn stage(plan: Vec<Chunk>) {
    parcsr_obs::with_span(\"stage\", || {
        run_chunked_plan(\"s\", plan, |c| c.index)
    });
}
";
        assert_eq!(lint_file(ANY_RS, src), []);
    }

    #[test]
    fn span_in_closed_sibling_closure_does_not_cover() {
        let src = "\
fn stage(plan: Vec<Chunk>) {
    helper(|| { parcsr_obs::enter(\"other\"); });
    run_chunked_plan(\"s\", plan, |c| c.index);
}
";
        let v = lint_file(ANY_RS, src);
        assert_eq!(rules(&v), ["span-coverage"]);
    }

    #[test]
    fn span_does_not_leak_into_nested_fn_item() {
        let src = "\
fn outer(plan: Vec<Chunk>) {
    let _span = parcsr_obs::enter(\"outer\");
    fn inner(plan: Vec<Chunk>) {
        run_chunked_plan(\"s\", plan, |c| c.index);
    }
    inner(plan);
}
";
        let v = lint_file(ANY_RS, src);
        assert_eq!(rules(&v), ["span-coverage"]);
    }

    #[test]
    fn runtime_and_shims_are_exempt_from_span_coverage() {
        let src = "fn f(plan: Vec<Chunk>) { run_chunked_plan(\"s\", plan, |c| c.index); }\n";
        assert_eq!(lint_file("crates/runtime/src/lib.rs", src), []);
        assert_eq!(lint_file("shims/rayon/src/lib.rs", src), []);
    }

    // -- report ------------------------------------------------------------

    #[test]
    fn workspace_report_json_shape() {
        let src = "\
fn bump(c: &AtomicU64) {
    // ORDERING: Relaxed; read only after join.
    c.fetch_add(1, Ordering::Relaxed);
    run_chunked_plan(\"s\", plan, |c| c.index);
}
";
        let mut ws = WorkspaceReport::default();
        ws.merge(analyze_file(ANY_RS, src));
        let json = ws.to_json();
        let text = json.pretty();
        let parsed = Json::parse(&text).expect("report JSON parses");
        assert_eq!(parsed, json);
    }
}
