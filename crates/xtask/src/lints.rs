//! Text-level lint passes over workspace sources.
//!
//! These are deliberately line-based: the rules they enforce (`// SAFETY:`
//! proximity, an `unsafe` allowlist, hot-path panic bans) are about source
//! *conventions*, and a full parse buys nothing but fragility. Tokens are
//! matched on comment- and string-stripped lines so prose and fixtures
//! never trip them, and everything from the first `#[cfg(test)]` marker on
//! is exempt (test code may unwrap freely).

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (unix separators).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable rule message.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Files allowed to contain `unsafe` code. Everything else in the
/// workspace must be 100% safe Rust. `crates/obs/src/mem.rs` owns the
/// counting `GlobalAlloc` (the trait itself is unsafe to implement).
pub const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/graph/src/sort.rs",
    "crates/obs/src/mem.rs",
    "shims/parking_lot/src/lib.rs",
];

/// Hot query-path files where panicking constructs are banned: these run
/// per neighbor-list lookup and must degrade via `Option`/saturation, not
/// aborts.
pub const HOT_PATHS: &[&str] = &["crates/core/src/query.rs", "crates/bitpack/src/cursor.rs"];

/// Files that must carry `#![deny(unsafe_op_in_unsafe_fn)]` (the crate
/// roots owning the allowlisted `unsafe` code).
pub const DENY_UNSAFE_OP_ROOTS: &[&str] = &[
    "crates/graph/src/lib.rs",
    "crates/obs/src/lib.rs",
    "shims/parking_lot/src/lib.rs",
];

/// True if the contiguous comment/attribute block immediately above line
/// `i` (plus line `i` itself) carries a `SAFETY:` or `# Safety` marker. A
/// blank or code line ends the block: a safety comment separated from its
/// `unsafe` by unrelated code is stale and does not count.
fn safety_documented(raw_lines: &[&str], i: usize) -> bool {
    let marker = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    if marker(raw_lines[i]) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("/*") || t.starts_with('*') {
            if marker(t) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Panicking or unchecked constructs banned on the hot query path.
const HOT_PATH_BANS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    "get_unchecked",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "dbg!(",
];

/// Strips line/block comments and string literals, preserving line
/// structure, so token matching never fires inside prose or fixtures.
/// `char` literals survive (a lone `'"'` would otherwise derail the
/// scanner, and no rule token fits in a char literal anyway).
fn strip_code(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    for line in text.lines() {
        let mut kept = String::with_capacity(line.len());
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_string = false;
        let mut raw_hashes: Option<usize> = None;
        while i < bytes.len() {
            if in_block_comment {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
            } else if in_string {
                match bytes[i] {
                    b'\\' if raw_hashes.is_none() => i += 2,
                    b'"' => {
                        let closes = match raw_hashes {
                            None => true,
                            Some(h) => {
                                bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= h
                            }
                        };
                        if closes {
                            i += 1 + raw_hashes.take().unwrap_or(0);
                            in_string = false;
                        } else {
                            i += 1;
                        }
                    }
                    _ => i += 1,
                }
            } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'/') {
                break; // line comment: drop the rest
            } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                in_block_comment = true;
                i += 2;
            } else if bytes[i] == b'"' {
                in_string = true;
                i += 1;
            } else if bytes[i] == b'r'
                && bytes.get(i + 1).is_some_and(|&b| b == b'"' || b == b'#')
                && !kept
                    .chars()
                    .last()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                let hashes = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
                if bytes.get(i + 1 + hashes) == Some(&b'"') {
                    raw_hashes = Some(hashes);
                    in_string = true;
                    i += 2 + hashes;
                } else {
                    kept.push('r');
                    i += 1;
                }
            } else {
                kept.push(bytes[i] as char);
                i += 1;
            }
        }
        out.push(kept);
    }
    out
}

/// Index of the first line from which test-module exemptions apply, or
/// `lines.len()` if the file has no test module.
fn test_cutoff(raw_lines: &[&str]) -> usize {
    raw_lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(raw_lines.len())
}

/// True if the stripped line contains `unsafe` as a standalone token.
fn has_unsafe_token(stripped: &str) -> bool {
    let bytes = stripped.as_bytes();
    let mut start = 0;
    while let Some(pos) = stripped[start..].find("unsafe") {
        let at = start + pos;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let after = at + "unsafe".len();
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// Lints one source file; `file` is the workspace-relative path.
pub fn lint_file(file: &str, text: &str) -> Vec<Violation> {
    let raw_lines: Vec<&str> = text.lines().collect();
    let stripped = strip_code(text);
    let cutoff = test_cutoff(&raw_lines);
    let mut out = Vec::new();

    let allowlisted = UNSAFE_ALLOWLIST.contains(&file);
    for (i, code) in stripped.iter().enumerate().take(cutoff) {
        if has_unsafe_token(code) {
            if !allowlisted {
                out.push(Violation {
                    file: file.to_string(),
                    line: i + 1,
                    message: "`unsafe` outside the allowlist (crates/graph/src/sort.rs, \
                              crates/obs/src/mem.rs, shims/parking_lot/src/lib.rs); \
                              rewrite safely or move the code behind an allowlisted module"
                        .to_string(),
                });
            } else if !safety_documented(&raw_lines, i) {
                out.push(Violation {
                    file: file.to_string(),
                    line: i + 1,
                    message: "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc \
                              section) in the comment block directly above"
                        .to_string(),
                });
            }
        }
    }

    if HOT_PATHS.contains(&file) {
        for (i, code) in stripped.iter().enumerate().take(cutoff) {
            for ban in HOT_PATH_BANS {
                if code.contains(ban) {
                    out.push(Violation {
                        file: file.to_string(),
                        line: i + 1,
                        message: format!(
                            "`{}` on the hot query path; return Option / saturate instead",
                            ban.trim_start_matches('.').trim_end_matches('(')
                        ),
                    });
                }
            }
        }
    }

    if DENY_UNSAFE_OP_ROOTS.contains(&file) && !text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
        out.push(Violation {
            file: file.to_string(),
            line: 1,
            message: "crate root must carry #![deny(unsafe_op_in_unsafe_fn)]".to_string(),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SORT_RS: &str = "crates/graph/src/sort.rs";

    #[test]
    fn documented_unsafe_in_allowlisted_file_passes() {
        let src = "\
// SAFETY: writers touch disjoint indices.
unsafe impl Sync for T {}

fn caller(t: &T) {
    // SAFETY: index proven in bounds above.
    unsafe { t.write(0) };
}
";
        assert_eq!(lint_file(SORT_RS, src), []);
    }

    #[test]
    fn undocumented_unsafe_in_allowlisted_file_fails() {
        let src = "fn f(p: *mut u8) {\n    unsafe { p.write(0) };\n}\n";
        let v = lint_file(SORT_RS, src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("SAFETY"), "{}", v[0]);
    }

    #[test]
    fn safety_doc_section_counts_for_unsafe_fn() {
        let src = "\
/// # Safety
///
/// Caller must keep `i` in bounds.
#[inline]
unsafe fn write(i: usize) {}
";
        assert_eq!(lint_file(SORT_RS, src), []);
    }

    #[test]
    fn stale_safety_comment_separated_by_blank_line_fails() {
        // A blank line ends the comment block: the marker no longer
        // attaches to the `unsafe` below it.
        let src = "// SAFETY: far away.\n\nunsafe fn f() {}\n";
        assert_eq!(lint_file(SORT_RS, src).len(), 1);
    }

    #[test]
    fn stale_safety_comment_separated_by_code_fails() {
        let src = "// SAFETY: documents the wrong thing.\nfn g() {}\nunsafe fn f() {}\n";
        assert_eq!(lint_file(SORT_RS, src).len(), 1);
    }

    #[test]
    fn long_safety_block_with_interleaved_attribute_passes() {
        // The marker may sit many lines up, as long as the block of
        // comments/attributes between it and the `unsafe` is contiguous.
        let mut src = String::from("// SAFETY: a long argument follows.\n");
        src.push_str(&"// more detail.\n".repeat(8));
        src.push_str("#[inline]\nunsafe fn f() {}\n");
        assert_eq!(lint_file(SORT_RS, &src).len(), 0);
    }

    #[test]
    fn any_unsafe_outside_allowlist_fails() {
        let src = "// SAFETY: even documented.\nunsafe fn f() {}\n";
        let v = lint_file("crates/core/src/query.rs", src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("allowlist"), "{}", v[0]);
    }

    #[test]
    fn unsafe_in_comments_strings_and_idents_is_ignored() {
        let src = "\
// this comment says unsafe and is fine
/* so does unsafe this one */
#![deny(unsafe_op_in_unsafe_fn)]
const MSG: &str = \"unsafe\";
const RAW: &str = r#\"unsafe { }\"#;
fn not_unsafe_fn() {}
";
        assert_eq!(lint_file("crates/core/src/lib.rs", src), []);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "\
fn ok() {}
#[cfg(test)]
mod tests {
    fn f(p: *mut u8) { unsafe { p.write(0) } }
}
";
        assert_eq!(lint_file("crates/core/src/lib.rs", src), []);
    }

    #[test]
    fn hot_path_bans_panicking_constructs() {
        let src = "\
fn lookup(v: &[u32], i: usize) -> u32 {
    let x = v.get(i).unwrap();
    if i > 10 { panic!(\"bad\") }
    *x
}
";
        let v = lint_file("crates/core/src/query.rs", src);
        let messages: Vec<_> = v.iter().map(|x| x.message.as_str()).collect();
        assert_eq!(v.len(), 2, "{messages:?}");
        assert!(messages[0].contains("unwrap"));
        assert!(messages[1].contains("panic!"));
    }

    #[test]
    fn hot_path_bans_do_not_apply_elsewhere() {
        let src = "fn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n";
        assert_eq!(lint_file("crates/core/src/builder.rs", src), []);
    }

    #[test]
    fn deny_attr_required_in_unsafe_crate_roots() {
        let v = lint_file("crates/graph/src/lib.rs", "//! docs\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unsafe_op_in_unsafe_fn"), "{}", v[0]);
        let clean = "#![deny(unsafe_op_in_unsafe_fn)]\n//! docs\n";
        assert_eq!(lint_file("crates/graph/src/lib.rs", clean), []);
    }

    #[test]
    fn display_is_file_line_message() {
        let v = Violation {
            file: "a/b.rs".into(),
            line: 7,
            message: "nope".into(),
        };
        assert_eq!(v.to_string(), "a/b.rs:7: nope");
    }
}
