//! Gate on a closed-loop driver result (`cargo xtask slo-check`).
//!
//! The `queries_closed_loop` bench binary emits a `parcsr.closed_loop.v1`
//! JSON document: per-window qps and latency percentiles plus a lifetime
//! rollup. CI archives that artifact and runs it through
//! `cargo xtask slo-check RESULT.json --p99-ns N --min-qps Q`, so a serving
//! regression (latency tail blowing past the SLO, throughput collapsing)
//! fails the build the same way a construction-stage drift does.
//!
//! Two threshold sources compose:
//!
//! * explicit — `--p99-ns N` (overall p99 must be ≤ N ns) and/or
//!   `--min-qps Q` (sustained throughput must be ≥ Q queries/s);
//! * baseline — `--baseline FILE [--slack F]` derives both thresholds from
//!   a committed earlier result: p99 may grow by at most the slack factor
//!   (default 0.50 — latency tails are noisy on shared CI runners) and qps
//!   may shrink by at most the same factor. Explicit flags override the
//!   derived value for their dimension.
//!
//! Schema validation is part of the gate: a result whose `windows` series
//! is empty, non-dense, or missing its percentile fields fails even if the
//! numbers would pass — a driver that silently stopped reporting windows
//! must not look healthy.

use parcsr_obs::json::Json;

use crate::trace_read::parse_json;

/// Result-JSON schema tag `slo-check` understands.
pub const SCHEMA: &str = "parcsr.closed_loop.v1";

/// Default baseline slack factor: p99 may grow, and qps may shrink, by
/// half before the gate trips. Latency percentiles on shared CI runners
/// are noisy; absolute targets should use the explicit flags.
pub const DEFAULT_SLACK: f64 = 0.50;

/// Thresholds to enforce (at least one must be set).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloThresholds {
    /// Overall p99 latency ceiling, ns.
    pub p99_ns: Option<u64>,
    /// Sustained throughput floor, queries/s.
    pub min_qps: Option<f64>,
}

/// One window row of a parsed result (the fields the gate prints).
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Window ordinal.
    pub window: u64,
    /// Queries completed in the window.
    pub requests: u64,
    /// Completed queries per second.
    pub qps: f64,
    /// Window p99 latency, ns.
    pub p99_ns: u64,
}

/// A parsed, schema-validated closed-loop result.
#[derive(Debug, Clone)]
pub struct ClosedLoopResult {
    /// Graph display name.
    pub graph: String,
    /// Client count.
    pub clients: u64,
    /// Per-window series (non-empty, dense ordinals).
    pub windows: Vec<WindowRow>,
    /// Lifetime requests.
    pub requests: u64,
    /// Lifetime sustained throughput, queries/s.
    pub qps: f64,
    /// Lifetime p99 latency, ns.
    pub p99_ns: u64,
}

fn field<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing field `{key}`"))
}

fn u64_field(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    field(obj, key, ctx)?
        .as_i64()
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| format!("{ctx}: field `{key}` must be a non-negative integer"))
}

fn f64_field(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    field(obj, key, ctx)?
        .as_f64()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("{ctx}: field `{key}` must be a non-negative number"))
}

/// Parses and schema-validates result text (`which` labels error messages,
/// e.g. `"result"` / `"baseline"`).
pub fn parse_result(which: &str, text: &str) -> Result<ClosedLoopResult, String> {
    let doc = parse_json(which, text)?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != SCHEMA {
        return Err(format!(
            "{which}: schema is {schema:?}, expected {SCHEMA:?} \
             (is this a queries_closed_loop --json artifact?)"
        ));
    }
    let graph = field(&doc, "graph", which)?
        .as_str()
        .ok_or_else(|| format!("{which}: field `graph` must be a string"))?
        .to_string();
    let clients = u64_field(&doc, "clients", which)?;
    let windows_json = field(&doc, "windows", which)?
        .as_array()
        .ok_or_else(|| format!("{which}: field `windows` must be an array"))?;
    if windows_json.is_empty() {
        return Err(format!(
            "{which}: `windows` is empty — the driver reported no completed windows"
        ));
    }
    let mut windows = Vec::with_capacity(windows_json.len());
    for (i, w) in windows_json.iter().enumerate() {
        let ctx = format!("{which}: windows[{i}]");
        let row = WindowRow {
            window: u64_field(w, "window", &ctx)?,
            requests: u64_field(w, "requests", &ctx)?,
            qps: f64_field(w, "qps", &ctx)?,
            p99_ns: u64_field(w, "p99_ns", &ctx)?,
        };
        if row.window != i as u64 {
            return Err(format!(
                "{ctx}: ordinal is {} — the window series must be dense from 0",
                row.window
            ));
        }
        windows.push(row);
    }
    let overall = field(&doc, "overall", which)?;
    let ctx = format!("{which}: overall");
    let requests = u64_field(overall, "requests", &ctx)?;
    if requests == 0 {
        return Err(format!(
            "{ctx}: zero requests — the driver measured nothing"
        ));
    }
    Ok(ClosedLoopResult {
        graph,
        clients,
        windows,
        requests,
        qps: f64_field(overall, "qps", &ctx)?,
        p99_ns: u64_field(overall, "p99_ns", &ctx)?,
    })
}

/// Derives thresholds from a baseline result: p99 ceiling = baseline p99
/// scaled up by `slack`, qps floor = baseline qps scaled down by `slack`.
#[must_use]
pub fn baseline_thresholds(baseline: &ClosedLoopResult, slack: f64) -> SloThresholds {
    SloThresholds {
        p99_ns: Some((baseline.p99_ns as f64 * (1.0 + slack)).ceil() as u64),
        min_qps: Some(baseline.qps * (1.0 - slack)),
    }
}

/// Gate outcome: the rendered report plus pass/fail.
#[derive(Debug)]
pub struct SloOutcome {
    /// Window table plus the verdict lines, ready to print.
    pub report: String,
    /// True iff a threshold was violated.
    pub failed: bool,
}

/// Checks result text against thresholds. `Err` means the result did not
/// parse/validate (also a gate failure, but a different exit message);
/// `Ok(out)` with `out.failed` means a threshold was violated.
pub fn check_slo_text(text: &str, thresholds: &SloThresholds) -> Result<SloOutcome, String> {
    if thresholds.p99_ns.is_none() && thresholds.min_qps.is_none() {
        return Err("no thresholds given (need --p99-ns, --min-qps, or --baseline)".into());
    }
    let result = parse_result("result", text)?;
    use std::fmt::Write;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "slo-check: {} ({} clients, {} requests over {} windows)",
        result.graph,
        result.clients,
        result.requests,
        result.windows.len()
    );
    let _ = writeln!(report, "| window | requests | qps | p99 (µs) |");
    let _ = writeln!(report, "|---:|---:|---:|---:|");
    for w in &result.windows {
        let _ = writeln!(
            report,
            "| {} | {} | {:.0} | {:.1} |",
            w.window,
            w.requests,
            w.qps,
            w.p99_ns as f64 / 1_000.0
        );
    }
    let mut failed = false;
    if let Some(ceiling) = thresholds.p99_ns {
        let ok = result.p99_ns <= ceiling;
        failed |= !ok;
        let _ = writeln!(
            report,
            "p99: {:.1} µs vs ceiling {:.1} µs — {}",
            result.p99_ns as f64 / 1_000.0,
            ceiling as f64 / 1_000.0,
            if ok { "ok" } else { "VIOLATED" }
        );
    }
    if let Some(floor) = thresholds.min_qps {
        let ok = result.qps >= floor;
        failed |= !ok;
        let _ = writeln!(
            report,
            "qps: {:.0} vs floor {floor:.0} — {}",
            result.qps,
            if ok { "ok" } else { "VIOLATED" }
        );
    }
    Ok(SloOutcome { report, failed })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal well-formed v1 result with the given overall numbers.
    fn result_json(p99_ns: u64, qps: f64) -> String {
        format!(
            r#"{{
  "schema": "parcsr.closed_loop.v1",
  "graph": "hub@0.02",
  "clients": 2,
  "windows": [
    {{"window": 0, "requests": 1000, "qps": {qps}, "p99_ns": {p99_ns}}},
    {{"window": 1, "requests": 1100, "qps": {qps}, "p99_ns": {p99_ns}}}
  ],
  "overall": {{"requests": 2100, "qps": {qps}, "p99_ns": {p99_ns}}}
}}"#
        )
    }

    #[test]
    fn passes_within_thresholds_and_fails_outside() {
        let text = result_json(2_500, 800_000.0);
        let out = check_slo_text(
            &text,
            &SloThresholds {
                p99_ns: Some(10_000),
                min_qps: Some(100_000.0),
            },
        )
        .unwrap();
        assert!(!out.failed, "{}", out.report);
        assert!(out.report.contains("p99: 2.5 µs"), "{}", out.report);

        let out = check_slo_text(
            &text,
            &SloThresholds {
                p99_ns: Some(1_000),
                min_qps: None,
            },
        )
        .unwrap();
        assert!(out.failed);
        assert!(out.report.contains("VIOLATED"), "{}", out.report);

        let out = check_slo_text(
            &text,
            &SloThresholds {
                p99_ns: None,
                min_qps: Some(1_000_000.0),
            },
        )
        .unwrap();
        assert!(out.failed);
    }

    #[test]
    fn requires_at_least_one_threshold() {
        let err = check_slo_text(&result_json(1, 1.0), &SloThresholds::default()).unwrap_err();
        assert!(err.contains("no thresholds"), "{err}");
    }

    #[test]
    fn rejects_schema_and_shape_violations() {
        let thresholds = SloThresholds {
            p99_ns: Some(u64::MAX),
            min_qps: None,
        };
        // Wrong schema tag.
        let err = check_slo_text(r#"{"schema":"other.v9"}"#, &thresholds).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        // Empty window series.
        let text = r#"{"schema":"parcsr.closed_loop.v1","graph":"g","clients":1,
                       "windows":[],"overall":{"requests":1,"qps":1.0,"p99_ns":1}}"#;
        let err = check_slo_text(text, &thresholds).unwrap_err();
        assert!(err.contains("empty"), "{err}");
        // Non-dense ordinals.
        let text = r#"{"schema":"parcsr.closed_loop.v1","graph":"g","clients":1,
                       "windows":[{"window":1,"requests":1,"qps":1.0,"p99_ns":1}],
                       "overall":{"requests":1,"qps":1.0,"p99_ns":1}}"#;
        let err = check_slo_text(text, &thresholds).unwrap_err();
        assert!(err.contains("dense"), "{err}");
        // Zero overall requests.
        let text = r#"{"schema":"parcsr.closed_loop.v1","graph":"g","clients":1,
                       "windows":[{"window":0,"requests":0,"qps":0.0,"p99_ns":0}],
                       "overall":{"requests":0,"qps":0.0,"p99_ns":0}}"#;
        let err = check_slo_text(text, &thresholds).unwrap_err();
        assert!(err.contains("measured nothing"), "{err}");
        // Missing percentile field.
        let text = r#"{"schema":"parcsr.closed_loop.v1","graph":"g","clients":1,
                       "windows":[{"window":0,"requests":1,"qps":1.0}],
                       "overall":{"requests":1,"qps":1.0,"p99_ns":1}}"#;
        let err = check_slo_text(text, &thresholds).unwrap_err();
        assert!(err.contains("p99_ns"), "{err}");
    }

    #[test]
    fn baseline_thresholds_apply_slack_both_ways() {
        let base = parse_result("baseline", &result_json(2_000, 100_000.0)).unwrap();
        let t = baseline_thresholds(&base, 0.5);
        assert_eq!(t.p99_ns, Some(3_000));
        assert!((t.min_qps.unwrap() - 50_000.0).abs() < 1e-6);

        // A result within the slack passes; one past it fails.
        let ok = check_slo_text(&result_json(2_900, 60_000.0), &t).unwrap();
        assert!(!ok.failed, "{}", ok.report);
        let slow = check_slo_text(&result_json(3_100, 60_000.0), &t).unwrap();
        assert!(slow.failed);
        let starved = check_slo_text(&result_json(2_000, 40_000.0), &t).unwrap();
        assert!(starved.failed);
    }
}
