//! Gate on a closed-loop driver result (`cargo xtask slo-check`).
//!
//! The `queries_closed_loop` bench binary emits a `parcsr.closed_loop.v1`
//! JSON document: per-window qps and latency percentiles plus a lifetime
//! rollup. CI archives that artifact and runs it through
//! `cargo xtask slo-check RESULT.json --p99-ns N --min-qps Q`, so a serving
//! regression (latency tail blowing past the SLO, throughput collapsing)
//! fails the build the same way a construction-stage drift does.
//!
//! Two threshold sources compose:
//!
//! * explicit — `--p99-ns N` (overall p99 must be ≤ N ns), `--min-qps Q`
//!   (sustained throughput must be ≥ Q queries/s), and the per-phase
//!   ceilings `--p99-queue-ns N` / `--p99-exec-ns N` grading the phase
//!   rollups the v1 schema carries in `overall.phases` (a phase ceiling
//!   against a result without phase rollups is an error — a driver that
//!   stopped decomposing must not look healthy);
//! * baseline — `--baseline FILE [--slack F]` derives thresholds from
//!   a committed earlier result: p99 (overall and per-phase, when the
//!   baseline carries phases) may grow by at most the slack factor
//!   (default 0.50 — latency tails are noisy on shared CI runners) and qps
//!   may shrink by at most the same factor. Explicit flags override the
//!   derived value for their dimension.
//!
//! Schema validation is part of the gate: a result whose `windows` series
//! is empty, non-dense, or missing its percentile fields fails even if the
//! numbers would pass — a driver that silently stopped reporting windows
//! must not look healthy.

use parcsr_obs::json::Json;

use crate::trace_read::parse_json;

/// Result-JSON schema tag `slo-check` understands.
pub const SCHEMA: &str = "parcsr.closed_loop.v1";

/// Default baseline slack factor: p99 may grow, and qps may shrink, by
/// half before the gate trips. Latency percentiles on shared CI runners
/// are noisy; absolute targets should use the explicit flags.
pub const DEFAULT_SLACK: f64 = 0.50;

/// Thresholds to enforce (at least one must be set).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloThresholds {
    /// Overall p99 latency ceiling, ns.
    pub p99_ns: Option<u64>,
    /// Sustained throughput floor, queries/s.
    pub min_qps: Option<f64>,
    /// Queue-phase p99 ceiling, ns (`--p99-queue-ns`).
    pub p99_queue_ns: Option<u64>,
    /// Execute-phase p99 ceiling, ns (`--p99-exec-ns`).
    pub p99_exec_ns: Option<u64>,
}

impl SloThresholds {
    fn any_set(&self) -> bool {
        self.p99_ns.is_some()
            || self.min_qps.is_some()
            || self.p99_queue_ns.is_some()
            || self.p99_exec_ns.is_some()
    }
}

/// One lifetime phase rollup row (`queue` / `exec` / `reply`).
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase name.
    pub name: String,
    /// Observations in the phase histogram.
    pub count: u64,
    /// Total time attributed to the phase, ns.
    pub sum_ns: u64,
    /// Phase p99 latency, ns.
    pub p99_ns: u64,
}

/// One window row of a parsed result (the fields the gate prints).
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Window ordinal.
    pub window: u64,
    /// Queries completed in the window.
    pub requests: u64,
    /// Completed queries per second.
    pub qps: f64,
    /// Window p99 latency, ns.
    pub p99_ns: u64,
}

/// A parsed, schema-validated closed-loop result.
#[derive(Debug, Clone)]
pub struct ClosedLoopResult {
    /// Graph display name.
    pub graph: String,
    /// Client count.
    pub clients: u64,
    /// Per-window series (non-empty, dense ordinals).
    pub windows: Vec<WindowRow>,
    /// Lifetime requests.
    pub requests: u64,
    /// Lifetime sustained throughput, queries/s.
    pub qps: f64,
    /// Lifetime p99 latency, ns.
    pub p99_ns: u64,
    /// Lifetime per-phase rollups (`overall.phases`). Empty for results
    /// written before the driver decomposed phases — grading a phase
    /// ceiling against such a result is an error, not a silent pass.
    pub phases: Vec<PhaseRow>,
}

impl ClosedLoopResult {
    /// Looks up a lifetime phase rollup by name.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseRow> {
        self.phases.iter().find(|p| p.name == name)
    }
}

fn field<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing field `{key}`"))
}

fn u64_field(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    field(obj, key, ctx)?
        .as_i64()
        .and_then(|v| u64::try_from(v).ok())
        .ok_or_else(|| format!("{ctx}: field `{key}` must be a non-negative integer"))
}

fn f64_field(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    field(obj, key, ctx)?
        .as_f64()
        .filter(|v| v.is_finite() && *v >= 0.0)
        .ok_or_else(|| format!("{ctx}: field `{key}` must be a non-negative number"))
}

/// Parses and schema-validates result text (`which` labels error messages,
/// e.g. `"result"` / `"baseline"`).
pub fn parse_result(which: &str, text: &str) -> Result<ClosedLoopResult, String> {
    let doc = parse_json(which, text)?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != SCHEMA {
        return Err(format!(
            "{which}: schema is {schema:?}, expected {SCHEMA:?} \
             (is this a queries_closed_loop --json artifact?)"
        ));
    }
    let graph = field(&doc, "graph", which)?
        .as_str()
        .ok_or_else(|| format!("{which}: field `graph` must be a string"))?
        .to_string();
    let clients = u64_field(&doc, "clients", which)?;
    let windows_json = field(&doc, "windows", which)?
        .as_array()
        .ok_or_else(|| format!("{which}: field `windows` must be an array"))?;
    if windows_json.is_empty() {
        return Err(format!(
            "{which}: `windows` is empty — the driver reported no completed windows"
        ));
    }
    let mut windows = Vec::with_capacity(windows_json.len());
    for (i, w) in windows_json.iter().enumerate() {
        let ctx = format!("{which}: windows[{i}]");
        let row = WindowRow {
            window: u64_field(w, "window", &ctx)?,
            requests: u64_field(w, "requests", &ctx)?,
            qps: f64_field(w, "qps", &ctx)?,
            p99_ns: u64_field(w, "p99_ns", &ctx)?,
        };
        if row.window != i as u64 {
            return Err(format!(
                "{ctx}: ordinal is {} — the window series must be dense from 0",
                row.window
            ));
        }
        windows.push(row);
    }
    let overall = field(&doc, "overall", which)?;
    let ctx = format!("{which}: overall");
    let requests = u64_field(overall, "requests", &ctx)?;
    if requests == 0 {
        return Err(format!(
            "{ctx}: zero requests — the driver measured nothing"
        ));
    }
    // `overall.phases` arrived with the phase-decomposed driver; older
    // artifacts legitimately lack it. When present it must be well formed.
    let mut phases = Vec::new();
    if let Some(phases_json) = overall.get("phases") {
        let rows = phases_json
            .as_array()
            .ok_or_else(|| format!("{ctx}: field `phases` must be an array"))?;
        for (i, p) in rows.iter().enumerate() {
            let pctx = format!("{ctx}: phases[{i}]");
            phases.push(PhaseRow {
                name: field(p, "name", &pctx)?
                    .as_str()
                    .ok_or_else(|| format!("{pctx}: field `name` must be a string"))?
                    .to_string(),
                count: u64_field(p, "count", &pctx)?,
                sum_ns: u64_field(p, "sum_ns", &pctx)?,
                p99_ns: u64_field(p, "p99_ns", &pctx)?,
            });
        }
    }
    Ok(ClosedLoopResult {
        graph,
        clients,
        windows,
        requests,
        qps: f64_field(overall, "qps", &ctx)?,
        p99_ns: u64_field(overall, "p99_ns", &ctx)?,
        phases,
    })
}

/// Derives thresholds from a baseline result: p99 ceiling = baseline p99
/// scaled up by `slack`, qps floor = baseline qps scaled down by `slack`.
/// Floor for baseline-derived phase ceilings, ns. A healthy queue phase
/// p99 sits in the hundreds of nanoseconds, where multiplicative slack
/// still leaves a ceiling inside scheduler-jitter range on a shared
/// runner; a real queueing regression is microseconds-to-milliseconds, so
/// clamping the derived ceiling up to 1 µs keeps the gate meaningful
/// without tripping on noise.
pub const MIN_PHASE_CEILING_NS: u64 = 1_000;

/// When the baseline carries phase rollups, queue/exec p99 ceilings are
/// derived with the same slack (clamped up to [`MIN_PHASE_CEILING_NS`]);
/// a pre-phase baseline derives none.
#[must_use]
pub fn baseline_thresholds(baseline: &ClosedLoopResult, slack: f64) -> SloThresholds {
    let phase_ceiling = |name: &str| {
        baseline
            .phase(name)
            .map(|p| ((p.p99_ns as f64 * (1.0 + slack)).ceil() as u64).max(MIN_PHASE_CEILING_NS))
    };
    SloThresholds {
        p99_ns: Some((baseline.p99_ns as f64 * (1.0 + slack)).ceil() as u64),
        min_qps: Some(baseline.qps * (1.0 - slack)),
        p99_queue_ns: phase_ceiling("queue"),
        p99_exec_ns: phase_ceiling("exec"),
    }
}

/// Gate outcome: the rendered report plus pass/fail.
#[derive(Debug)]
pub struct SloOutcome {
    /// Window table plus the verdict lines, ready to print.
    pub report: String,
    /// True iff a threshold was violated.
    pub failed: bool,
}

/// Checks result text against thresholds. `Err` means the result did not
/// parse/validate (also a gate failure, but a different exit message);
/// `Ok(out)` with `out.failed` means a threshold was violated.
pub fn check_slo_text(text: &str, thresholds: &SloThresholds) -> Result<SloOutcome, String> {
    if !thresholds.any_set() {
        return Err(
            "no thresholds given (need --p99-ns, --min-qps, --p99-queue-ns, \
             --p99-exec-ns, or --baseline)"
                .into(),
        );
    }
    let result = parse_result("result", text)?;
    use std::fmt::Write;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "slo-check: {} ({} clients, {} requests over {} windows)",
        result.graph,
        result.clients,
        result.requests,
        result.windows.len()
    );
    let _ = writeln!(report, "| window | requests | qps | p99 (µs) |");
    let _ = writeln!(report, "|---:|---:|---:|---:|");
    for w in &result.windows {
        let _ = writeln!(
            report,
            "| {} | {} | {:.0} | {:.1} |",
            w.window,
            w.requests,
            w.qps,
            w.p99_ns as f64 / 1_000.0
        );
    }
    let mut failed = false;
    if let Some(ceiling) = thresholds.p99_ns {
        let ok = result.p99_ns <= ceiling;
        failed |= !ok;
        let _ = writeln!(
            report,
            "p99: {:.1} µs vs ceiling {:.1} µs — {}",
            result.p99_ns as f64 / 1_000.0,
            ceiling as f64 / 1_000.0,
            if ok { "ok" } else { "VIOLATED" }
        );
    }
    if let Some(floor) = thresholds.min_qps {
        let ok = result.qps >= floor;
        failed |= !ok;
        let _ = writeln!(
            report,
            "qps: {:.0} vs floor {floor:.0} — {}",
            result.qps,
            if ok { "ok" } else { "VIOLATED" }
        );
    }
    for (phase, ceiling) in [
        ("queue", thresholds.p99_queue_ns),
        ("exec", thresholds.p99_exec_ns),
    ] {
        let Some(ceiling) = ceiling else { continue };
        let Some(row) = result.phase(phase) else {
            return Err(format!(
                "result: a `{phase}` p99 ceiling is set but the result carries \
                 no `{phase}` phase rollup — re-run with a phase-aware driver"
            ));
        };
        let ok = row.p99_ns <= ceiling;
        failed |= !ok;
        let _ = writeln!(
            report,
            "{phase} p99: {:.1} µs vs ceiling {:.1} µs — {}",
            row.p99_ns as f64 / 1_000.0,
            ceiling as f64 / 1_000.0,
            if ok { "ok" } else { "VIOLATED" }
        );
    }
    Ok(SloOutcome { report, failed })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal well-formed v1 result with the given overall numbers and
    /// phase p99s (queue/exec rollups as the phase-aware driver emits them).
    fn result_json_with_phases(p99_ns: u64, qps: f64, queue_p99: u64, exec_p99: u64) -> String {
        format!(
            r#"{{
  "schema": "parcsr.closed_loop.v1",
  "graph": "hub@0.02",
  "clients": 2,
  "windows": [
    {{"window": 0, "requests": 1000, "qps": {qps}, "p99_ns": {p99_ns}}},
    {{"window": 1, "requests": 1100, "qps": {qps}, "p99_ns": {p99_ns}}}
  ],
  "overall": {{"requests": 2100, "qps": {qps}, "p99_ns": {p99_ns}, "phases": [
    {{"name": "queue", "count": 2100, "sum_ns": 100000, "p99_ns": {queue_p99}}},
    {{"name": "exec", "count": 2100, "sum_ns": 900000, "p99_ns": {exec_p99}}},
    {{"name": "reply", "count": 2100, "sum_ns": 1000, "p99_ns": 10}}
  ]}}
}}"#
        )
    }

    /// A well-formed v1 result without phase rollups (pre-phase artifact).
    fn result_json(p99_ns: u64, qps: f64) -> String {
        format!(
            r#"{{
  "schema": "parcsr.closed_loop.v1",
  "graph": "hub@0.02",
  "clients": 2,
  "windows": [
    {{"window": 0, "requests": 1000, "qps": {qps}, "p99_ns": {p99_ns}}},
    {{"window": 1, "requests": 1100, "qps": {qps}, "p99_ns": {p99_ns}}}
  ],
  "overall": {{"requests": 2100, "qps": {qps}, "p99_ns": {p99_ns}}}
}}"#
        )
    }

    #[test]
    fn passes_within_thresholds_and_fails_outside() {
        let text = result_json(2_500, 800_000.0);
        let out = check_slo_text(
            &text,
            &SloThresholds {
                p99_ns: Some(10_000),
                min_qps: Some(100_000.0),
                ..SloThresholds::default()
            },
        )
        .unwrap();
        assert!(!out.failed, "{}", out.report);
        assert!(out.report.contains("p99: 2.5 µs"), "{}", out.report);

        let out = check_slo_text(
            &text,
            &SloThresholds {
                p99_ns: Some(1_000),
                ..SloThresholds::default()
            },
        )
        .unwrap();
        assert!(out.failed);
        assert!(out.report.contains("VIOLATED"), "{}", out.report);

        let out = check_slo_text(
            &text,
            &SloThresholds {
                min_qps: Some(1_000_000.0),
                ..SloThresholds::default()
            },
        )
        .unwrap();
        assert!(out.failed);
    }

    #[test]
    fn requires_at_least_one_threshold() {
        let err = check_slo_text(&result_json(1, 1.0), &SloThresholds::default()).unwrap_err();
        assert!(err.contains("no thresholds"), "{err}");
    }

    #[test]
    fn rejects_schema_and_shape_violations() {
        let thresholds = SloThresholds {
            p99_ns: Some(u64::MAX),
            ..SloThresholds::default()
        };
        // Wrong schema tag.
        let err = check_slo_text(r#"{"schema":"other.v9"}"#, &thresholds).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        // Empty window series.
        let text = r#"{"schema":"parcsr.closed_loop.v1","graph":"g","clients":1,
                       "windows":[],"overall":{"requests":1,"qps":1.0,"p99_ns":1}}"#;
        let err = check_slo_text(text, &thresholds).unwrap_err();
        assert!(err.contains("empty"), "{err}");
        // Non-dense ordinals.
        let text = r#"{"schema":"parcsr.closed_loop.v1","graph":"g","clients":1,
                       "windows":[{"window":1,"requests":1,"qps":1.0,"p99_ns":1}],
                       "overall":{"requests":1,"qps":1.0,"p99_ns":1}}"#;
        let err = check_slo_text(text, &thresholds).unwrap_err();
        assert!(err.contains("dense"), "{err}");
        // Zero overall requests.
        let text = r#"{"schema":"parcsr.closed_loop.v1","graph":"g","clients":1,
                       "windows":[{"window":0,"requests":0,"qps":0.0,"p99_ns":0}],
                       "overall":{"requests":0,"qps":0.0,"p99_ns":0}}"#;
        let err = check_slo_text(text, &thresholds).unwrap_err();
        assert!(err.contains("measured nothing"), "{err}");
        // Missing percentile field.
        let text = r#"{"schema":"parcsr.closed_loop.v1","graph":"g","clients":1,
                       "windows":[{"window":0,"requests":1,"qps":1.0}],
                       "overall":{"requests":1,"qps":1.0,"p99_ns":1}}"#;
        let err = check_slo_text(text, &thresholds).unwrap_err();
        assert!(err.contains("p99_ns"), "{err}");
    }

    #[test]
    fn phase_ceilings_grade_the_phase_rollups() {
        let text = result_json_with_phases(2_500, 800_000.0, 400, 2_400);
        let within = SloThresholds {
            p99_queue_ns: Some(1_000),
            p99_exec_ns: Some(5_000),
            ..SloThresholds::default()
        };
        let out = check_slo_text(&text, &within).unwrap();
        assert!(!out.failed, "{}", out.report);
        assert!(out.report.contains("queue p99: 0.4 µs"), "{}", out.report);
        assert!(out.report.contains("exec p99: 2.4 µs"), "{}", out.report);

        // A queue tail past its ceiling trips the gate even when the
        // end-to-end p99 is healthy.
        let queued = SloThresholds {
            p99_ns: Some(10_000),
            p99_queue_ns: Some(100),
            ..SloThresholds::default()
        };
        let out = check_slo_text(&text, &queued).unwrap();
        assert!(out.failed);
        assert!(out.report.contains("queue p99"), "{}", out.report);
        assert!(out.report.contains("VIOLATED"), "{}", out.report);

        let exec = SloThresholds {
            p99_exec_ns: Some(1_000),
            ..SloThresholds::default()
        };
        assert!(check_slo_text(&text, &exec).unwrap().failed);
    }

    #[test]
    fn phase_ceiling_against_a_pre_phase_result_is_an_error() {
        let text = result_json(2_500, 800_000.0);
        let t = SloThresholds {
            p99_queue_ns: Some(1_000),
            ..SloThresholds::default()
        };
        let err = check_slo_text(&text, &t).unwrap_err();
        assert!(err.contains("no `queue` phase rollup"), "{err}");
    }

    #[test]
    fn rejects_malformed_phase_rollups() {
        // Phases present but a row is missing its percentile field.
        let text = r#"{"schema":"parcsr.closed_loop.v1","graph":"g","clients":1,
                       "windows":[{"window":0,"requests":1,"qps":1.0,"p99_ns":1}],
                       "overall":{"requests":1,"qps":1.0,"p99_ns":1,
                                  "phases":[{"name":"queue","count":1,"sum_ns":1}]}}"#;
        let err = parse_result("result", text).unwrap_err();
        assert!(err.contains("phases[0]"), "{err}");
        assert!(err.contains("p99_ns"), "{err}");
    }

    #[test]
    fn baseline_thresholds_apply_slack_both_ways() {
        let base = parse_result("baseline", &result_json(2_000, 100_000.0)).unwrap();
        let t = baseline_thresholds(&base, 0.5);
        assert_eq!(t.p99_ns, Some(3_000));
        assert!((t.min_qps.unwrap() - 50_000.0).abs() < 1e-6);
        // A pre-phase baseline derives no phase ceilings.
        assert_eq!(t.p99_queue_ns, None);
        assert_eq!(t.p99_exec_ns, None);

        // A result within the slack passes; one past it fails.
        let ok = check_slo_text(&result_json(2_900, 60_000.0), &t).unwrap();
        assert!(!ok.failed, "{}", ok.report);
        let slow = check_slo_text(&result_json(3_100, 60_000.0), &t).unwrap();
        assert!(slow.failed);
        let starved = check_slo_text(&result_json(2_000, 40_000.0), &t).unwrap();
        assert!(starved.failed);
    }

    #[test]
    fn baseline_with_phases_derives_phase_ceilings() {
        let base = parse_result(
            "baseline",
            &result_json_with_phases(4_000, 100_000.0, 400, 1_800),
        )
        .unwrap();
        let t = baseline_thresholds(&base, 0.5);
        // The queue ceiling (400 × 1.5 = 600) clamps up to the 1 µs floor —
        // sub-µs ceilings would gate scheduler jitter, not regressions.
        assert_eq!(t.p99_queue_ns, Some(MIN_PHASE_CEILING_NS));
        assert_eq!(t.p99_exec_ns, Some(2_700));

        // A result whose queue share regressed past the floor fails even
        // with the end-to-end p99 inside its own ceiling.
        let regressed = result_json_with_phases(4_100, 90_000.0, 1_500, 1_700);
        let out = check_slo_text(&regressed, &t).unwrap();
        assert!(out.failed, "{}", out.report);
        assert!(out.report.contains("queue p99"), "{}", out.report);
    }
}
