//! Fixture-corpus self-test for the lint passes: seeded-violation style,
//! like the race checker's fault-injection tests. Each rule owns a
//! directory of `.rs` snippets under `crates/xtask/tests/lint_fixtures/`
//! (excluded from the workspace lint walk); `accept_*` files must lint
//! completely clean, `reject_*` files must trip *their* rule — so a lint
//! that silently stops firing fails CI, not just stops reporting.
//!
//! Fixture header directives (plain comments, read before linting):
//!
//! * `//@ path: crates/foo/src/bar.rs` — the pretend workspace-relative
//!   path the snippet is linted as (rules like the hot-path file ban and
//!   the span-coverage exemptions key on it). Defaults to
//!   `crates/fixture/src/lib.rs`.
//! * `//@ expect-line: N` — repeatable; a reject fixture asserting that a
//!   violation of the rule fires on 1-based line `N`.

use std::path::Path;

use crate::lints;

/// Rules every corpus must cover with at least one accept and one reject
/// fixture (the token-aware passes; extra rule directories are welcome).
pub const REQUIRED_RULES: &[&str] = &[
    "hot-path-alloc",
    "atomic-ordering",
    "lock-across-parallel",
    "span-coverage",
];

/// Header directives parsed from a fixture file.
struct Header {
    path: String,
    expect_lines: Vec<usize>,
}

fn parse_header(name: &str, text: &str, errors: &mut Vec<String>) -> Header {
    let mut h = Header {
        path: "crates/fixture/src/lib.rs".to_string(),
        expect_lines: Vec::new(),
    };
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix("//@") else {
            continue;
        };
        let rest = rest.trim();
        if let Some(p) = rest.strip_prefix("path:") {
            h.path = p.trim().to_string();
        } else if let Some(n) = rest.strip_prefix("expect-line:") {
            match n.trim().parse::<usize>() {
                Ok(l) if l > 0 => h.expect_lines.push(l),
                _ => errors.push(format!("{name}: bad `//@ expect-line:` value `{n}`")),
            }
        } else {
            errors.push(format!("{name}: unknown fixture directive `//@ {rest}`"));
        }
    }
    h
}

/// Runs the whole corpus under `dir`. `Ok(summary)` iff every accept
/// fixture is clean, every reject fixture trips exactly its rule (covering
/// any `expect-line`s), and every required rule has both kinds.
pub fn check_fixture_corpus(dir: &Path) -> Result<String, Vec<String>> {
    let mut errors = Vec::new();
    let mut accepts = 0usize;
    let mut rejects = 0usize;
    let mut covered: Vec<(String, bool, bool)> = Vec::new(); // rule, has_accept, has_reject

    let mut rule_dirs: Vec<_> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => {
            return Err(vec![format!(
                "cannot read fixture corpus {}: {e}",
                dir.display()
            )])
        }
    };
    rule_dirs.sort();

    for rule_dir in rule_dirs {
        let rule = rule_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut has_accept = false;
        let mut has_reject = false;
        let mut files: Vec<_> = match std::fs::read_dir(&rule_dir) {
            Ok(entries) => entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect(),
            Err(e) => {
                errors.push(format!("cannot read {}: {e}", rule_dir.display()));
                continue;
            }
        };
        files.sort();
        for file in files {
            let stem = file
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let name = format!("{rule}/{stem}");
            let text = match std::fs::read_to_string(&file) {
                Ok(t) => t,
                Err(e) => {
                    errors.push(format!("cannot read {name}: {e}"));
                    continue;
                }
            };
            let header = parse_header(&name, &text, &mut errors);
            let violations = lints::lint_file(&header.path, &text);
            if stem.starts_with("accept_") {
                has_accept = true;
                accepts += 1;
                for v in &violations {
                    errors.push(format!("{name}: accept fixture not clean: {v}"));
                }
            } else if stem.starts_with("reject_") {
                has_reject = true;
                rejects += 1;
                if !violations.iter().any(|v| v.rule == rule) {
                    errors.push(format!(
                        "{name}: reject fixture produced no `{rule}` violation \
                         (the rule has stopped firing)"
                    ));
                }
                for v in &violations {
                    if v.rule != rule {
                        errors.push(format!(
                            "{name}: reject fixture tripped a different rule: {v}"
                        ));
                    }
                }
                for l in &header.expect_lines {
                    if !violations.iter().any(|v| v.rule == rule && v.line == *l) {
                        errors.push(format!(
                            "{name}: expected a `{rule}` violation on line {l}; got: {:?}",
                            violations.iter().map(|v| v.line).collect::<Vec<_>>()
                        ));
                    }
                }
            } else {
                errors.push(format!(
                    "{name}: fixture files must be named accept_* or reject_*"
                ));
            }
        }
        covered.push((rule, has_accept, has_reject));
    }

    for required in REQUIRED_RULES {
        match covered.iter().find(|(r, _, _)| r == required) {
            None => errors.push(format!(
                "no fixture directory for required rule `{required}`"
            )),
            Some((_, a, r)) => {
                if !a {
                    errors.push(format!("rule `{required}` has no accept_* fixture"));
                }
                if !r {
                    errors.push(format!("rule `{required}` has no reject_* fixture"));
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(format!(
            "{} rule dirs, {} accept + {} reject fixtures ok",
            covered.len(),
            accepts,
            rejects
        ))
    } else {
        Err(errors)
    }
}
