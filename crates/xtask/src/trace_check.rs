//! Validator for Chrome trace-event files produced by `parcsr-obs`
//! (`--trace` on the bench binaries and the CLI).
//!
//! CI runs a bench smoke with `--trace` and feeds the output through
//! `cargo xtask check-trace <file>`; the build fails if the trace is
//! missing, unparseable, empty, structurally malformed, or not
//! time-ordered — the cheapest end-to-end proof that the instrumentation
//! actually recorded the pipeline.
//!
//! Structural parsing lives in [`crate::trace_read`] (shared with
//! `stage-diff` and `trace-analyze`); this module adds the semantic rules:
//!
//! * complete (`"X"`) span events must be time-ordered per thread, and
//!   their `args` payload (when present) must hold only non-negative
//!   integers for the typed keys (`depth`, `sample`, `edges`, `chunk`,
//!   `chunk_len`, `bits`, `chunks`). Per-chunk spans (names ending `.chunk` or
//!   `_chunk`) must carry a `chunk` index — a chunk span without its index
//!   means the instrumentation site lost its payload.
//! * counter (`"C"`) events — the memory / metric series. Must use a known
//!   metric namespace (`mem.`, `query.`, `pool.`), be time-ordered per
//!   counter name, and hold a non-empty `args` object of non-negative
//!   numbers.
//! * serving-window counters (`query.win.*`, `query.phase.*`, and
//!   `query.exemplar.*` — the windowed series the closed-loop driver's
//!   reporter rotates) must additionally carry a non-negative integer
//!   `window` arg that never decreases within a counter name: a window
//!   ordinal going backwards means the rotation epoch and the export order
//!   disagree.
//! * exemplar counters (`query.exemplar.<kind>.<class>`, one per captured
//!   tail query) must carry the full phase breakdown (`total`, `queue`,
//!   `exec`, `reply`), and the phases must partition the total:
//!   queue + exec + reply may exceed `total` by at most 10% (clock
//!   checkpoints are clamped monotone at capture, so a larger excess means
//!   the exporter mixed up fields).
//! * phase sums must reconcile with their cell: for each
//!   `(window, kind, class)`, the summed `sum` args of the
//!   `query.phase.<phase>.<kind>.<class>` points may exceed the matching
//!   `query.win.<kind>.<class>` point's `sum` by at most 10% (window
//!   boundary smear is bounded by one in-flight record per client). Cells
//!   whose `query.win` point lacks a `sum` arg (pre-phase traces) are
//!   skipped.

use crate::trace_read::{parse_trace, Phase, TraceEvent};

/// Span-arg keys the exporter may emit; every one is a non-negative count
/// or width, so anything negative (or non-integer) is a recorder bug.
const SPAN_ARG_KEYS: &[&str] = &[
    "depth",
    "sample",
    "edges",
    "chunk",
    "chunk_len",
    "bits",
    "chunks",
];

/// Metric namespaces counter events may use. A counter outside these was
/// registered ad hoc and would silently vanish from dashboards keyed on
/// the known prefixes.
const COUNTER_PREFIXES: &[&str] = &["mem.", "query.", "pool."];

fn check_span_args(i: usize, ev: &TraceEvent) -> Result<(), String> {
    let name = &ev.name;
    let Some(args) = &ev.args else {
        return Ok(());
    };
    if args.as_object().is_none() {
        return Err(format!("event {i} (`{name}`): `args` is not an object"));
    }
    for key in SPAN_ARG_KEYS {
        if let Some(v) = args.get(key) {
            match v.as_i64() {
                Some(n) if n >= 0 => {}
                _ => {
                    return Err(format!(
                        "event {i} (`{name}`): arg `{key}` must be a non-negative \
                         integer, got {v:?}"
                    ));
                }
            }
        }
    }
    if (name.ends_with(".chunk") || name.ends_with("_chunk")) && args.get("chunk").is_none() {
        return Err(format!(
            "event {i} (`{name}`): per-chunk span is missing its `chunk` index arg"
        ));
    }
    Ok(())
}

fn check_counter(i: usize, ev: &TraceEvent) -> Result<(), String> {
    let name = &ev.name;
    if !COUNTER_PREFIXES.iter().any(|p| name.starts_with(p)) {
        return Err(format!(
            "event {i}: counter `{name}` is outside the known namespaces \
             (mem.*, query.*, pool.*)"
        ));
    }
    let args = ev
        .args
        .as_ref()
        .ok_or_else(|| format!("event {i}: counter `{name}` is missing `args`"))?;
    let fields = args
        .as_object()
        .ok_or_else(|| format!("event {i}: counter `{name}` args is not an object"))?;
    if fields.is_empty() {
        return Err(format!(
            "event {i}: counter `{name}` has an empty args object"
        ));
    }
    for (key, v) in fields {
        match v.as_f64() {
            Some(x) if x >= 0.0 => {}
            _ => {
                return Err(format!(
                    "event {i}: counter `{name}` arg `{key}` must be a non-negative \
                     number, got {v:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Counter namespaces whose every point belongs to a rotated serving
/// window and must therefore carry a monotone `window` ordinal.
const WINDOWED_PREFIXES: &[&str] = &["query.win.", "query.phase.", "query.exemplar."];

/// The serving-window ordinal of a windowed serving counter, enforced
/// present and integer; `None` for any other counter.
fn check_window_arg(i: usize, ev: &TraceEvent) -> Result<Option<i64>, String> {
    let name = &ev.name;
    if !WINDOWED_PREFIXES.iter().any(|p| name.starts_with(p)) {
        return Ok(None);
    }
    match ev.arg_i64("window") {
        Some(w) if w >= 0 => Ok(Some(w)),
        _ => Err(format!(
            "event {i}: serving-window counter `{name}` must carry a non-negative \
             integer `window` arg"
        )),
    }
}

/// Validates a `query.exemplar.*` point: full phase breakdown present and
/// the phases partition the total within 10%.
fn check_exemplar(i: usize, ev: &TraceEvent) -> Result<(), String> {
    let name = &ev.name;
    let mut parts = [0u64; 4];
    for (slot, key) in parts.iter_mut().zip(["total", "queue", "exec", "reply"]) {
        *slot = match ev.arg_i64(key) {
            Some(v) if v >= 0 => v as u64,
            _ => {
                return Err(format!(
                    "event {i}: exemplar `{name}` must carry a non-negative \
                     integer `{key}` arg"
                ));
            }
        };
    }
    let [total, queue, exec, reply] = parts;
    let phase_sum = queue + exec + reply;
    // Integer form of phase_sum <= total * 1.10.
    if phase_sum * 10 > total * 11 {
        return Err(format!(
            "event {i}: exemplar `{name}` phases do not partition the total: \
             queue {queue} + exec {exec} + reply {reply} = {phase_sum} \
             exceeds total {total} by more than 10%"
        ));
    }
    Ok(())
}

/// Validates trace text; returns the event count on success.
pub fn check_trace_text(text: &str) -> Result<usize, String> {
    let events = parse_trace(text)?;

    // Span events are ordered per tid; counter events per counter name.
    // Both maps are tiny (few tids, few counters), linear scan is fine.
    let mut span_last_ts: Vec<(i64, f64)> = Vec::new();
    let mut counter_last_ts: Vec<(String, f64)> = Vec::new();
    let mut window_last: Vec<(String, i64)> = Vec::new();
    // Phase-sum reconciliation state, keyed by (window ordinal, cell name
    // `<kind>.<class>`): the summed phase `sum` args and the end-to-end
    // `query.win` cell `sum`. Tiny (cells × windows), linear scan is fine.
    let mut phase_sums: Vec<((i64, String), u64)> = Vec::new();
    let mut win_sums: Vec<((i64, String), u64)> = Vec::new();
    let mut saw_span = false;
    for (i, ev) in events.iter().enumerate() {
        match ev.ph {
            Phase::Complete => {
                saw_span = true;
                match span_last_ts.iter_mut().find(|(t, _)| *t == ev.tid) {
                    Some((_, last)) => {
                        if ev.ts_us < *last {
                            return Err(format!(
                                "event {i} (tid {}) goes backwards in time: ts {} \
                                 after {last}",
                                ev.tid, ev.ts_us
                            ));
                        }
                        *last = ev.ts_us;
                    }
                    None => span_last_ts.push((ev.tid, ev.ts_us)),
                }
                check_span_args(i, ev)?;
            }
            Phase::Counter => {
                check_counter(i, ev)?;
                match counter_last_ts.iter_mut().find(|(n, _)| *n == ev.name) {
                    Some((_, last)) => {
                        if ev.ts_us < *last {
                            return Err(format!(
                                "event {i}: counter `{}` goes backwards in time: \
                                 ts {} after {last}",
                                ev.name, ev.ts_us
                            ));
                        }
                        *last = ev.ts_us;
                    }
                    None => counter_last_ts.push((ev.name.clone(), ev.ts_us)),
                }
                if let Some(w) = check_window_arg(i, ev)? {
                    match window_last.iter_mut().find(|(n, _)| *n == ev.name) {
                        Some((_, last)) => {
                            if w < *last {
                                return Err(format!(
                                    "event {i}: counter `{}` window ordinal goes \
                                     backwards: {w} after {last}",
                                    ev.name
                                ));
                            }
                            *last = w;
                        }
                        None => window_last.push((ev.name.clone(), w)),
                    }
                    if ev.name.starts_with("query.exemplar.") {
                        check_exemplar(i, ev)?;
                    } else if let Some(rest) = ev.name.strip_prefix("query.phase.") {
                        let Some((_, cell)) = rest.split_once('.') else {
                            return Err(format!(
                                "event {i}: phase counter `{}` is missing its \
                                 `<kind>.<class>` cell suffix",
                                ev.name
                            ));
                        };
                        let sum = match ev.arg_i64("sum") {
                            Some(s) if s >= 0 => s as u64,
                            _ => {
                                return Err(format!(
                                    "event {i}: phase counter `{}` must carry a \
                                     non-negative integer `sum` arg",
                                    ev.name
                                ));
                            }
                        };
                        let key = (w, cell.to_string());
                        match phase_sums.iter_mut().find(|(k, _)| *k == key) {
                            Some((_, acc)) => *acc += sum,
                            None => phase_sums.push((key, sum)),
                        }
                    } else if let Some(cell) = ev.name.strip_prefix("query.win.") {
                        // `query.win.qps` is the per-window rollup, not a
                        // cell; cells without a `sum` (pre-phase traces)
                        // simply don't participate in reconciliation.
                        if cell != "qps" {
                            if let Some(sum) = ev.arg_i64("sum").filter(|s| *s >= 0) {
                                win_sums.push(((w, cell.to_string()), sum as u64));
                            }
                        }
                    }
                }
            }
        }
    }
    if !saw_span {
        return Err("trace has counter events but no span events".into());
    }
    // Phase sums must reconcile with their end-to-end cell: within a
    // (window, cell), queue + exec + reply time may exceed the measured
    // end-to-end time by at most 10% (boundary smear is bounded).
    for ((window, cell), phase_sum) in &phase_sums {
        let Some((_, win_sum)) = win_sums.iter().find(|((w, c), _)| w == window && c == cell)
        else {
            continue;
        };
        if phase_sum * 10 > win_sum * 11 {
            return Err(format!(
                "window {window} cell `{cell}`: phase sums total {phase_sum} ns \
                 but the end-to-end `query.win.{cell}` sum is {win_sum} ns — \
                 phases exceed the cell by more than 10%"
            ));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, tid: i64, ts: i64) -> String {
        format!(
            r#"{{"name":"{name}","cat":"parcsr","ph":"X","ts":{ts},"dur":5,"pid":1,"tid":{tid},"args":{{"depth":0}}}}"#
        )
    }

    fn counter(name: &str, ts: i64, args: &str) -> String {
        format!(
            r#"{{"name":"{name}","cat":"parcsr","ph":"C","ts":{ts},"pid":1,"tid":0,"args":{args}}}"#
        )
    }

    #[test]
    fn accepts_a_well_formed_trace() {
        let text = format!(
            "[{},{},{}]",
            event("degree", 0, 10),
            event("scan", 0, 20),
            event("degree.chunk", 1, 12).replace(
                r#""args":{"depth":0}"#,
                r#""args":{"depth":0,"sample":8,"chunk":3,"chunk_len":128}"#
            )
        );
        assert_eq!(check_trace_text(&text), Ok(3));
    }

    #[test]
    fn rejects_garbage_and_empty() {
        assert!(check_trace_text("not json").is_err());
        assert!(check_trace_text("{}").is_err());
        let err = check_trace_text("[]").unwrap_err();
        assert!(err.contains("no events"), "{err}");
    }

    #[test]
    fn rejects_missing_fields_and_disorder() {
        let err = check_trace_text(r#"[{"name":"x","ph":"X","ts":1}]"#).unwrap_err();
        assert!(err.contains("missing required field"), "{err}");

        // Same tid going backwards in time must fail...
        let text = format!("[{},{}]", event("a", 0, 20), event("b", 0, 10));
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("backwards"), "{err}");

        // ...but interleaved tids each monotone are fine.
        let text = format!("[{},{}]", event("a", 0, 20), event("b", 1, 10));
        assert_eq!(check_trace_text(&text), Ok(2));
    }

    #[test]
    fn rejects_unknown_phase() {
        let text = r#"[{"name":"a","ph":"B","ts":1,"dur":2,"pid":1,"tid":0}]"#;
        let err = check_trace_text(text).unwrap_err();
        assert!(err.contains("neither a complete"), "{err}");
    }

    #[test]
    fn rejects_negative_or_non_integer_span_args() {
        let bad = format!(
            "[{}]",
            event("scan", 0, 10)
                .replace(r#""args":{"depth":0}"#, r#""args":{"depth":0,"edges":-5}"#)
        );
        let err = check_trace_text(&bad).unwrap_err();
        assert!(err.contains("`edges`"), "{err}");

        let bad = format!(
            "[{}]",
            event("scan", 0, 10).replace(r#""args":{"depth":0}"#, r#""args":{"bits":"seven"}"#)
        );
        let err = check_trace_text(&bad).unwrap_err();
        assert!(err.contains("`bits`"), "{err}");
    }

    #[test]
    fn chunk_spans_must_carry_their_chunk_index() {
        for name in ["degree.chunk", "scan.totals_chunk"] {
            let err = check_trace_text(&format!("[{}]", event(name, 1, 10))).unwrap_err();
            assert!(err.contains("`chunk` index"), "{name}: {err}");
        }
        // Unknown args keys on a non-chunk span are ignored (forward compat).
        let ok = format!(
            "[{}]",
            event("scan", 0, 10)
                .replace(r#""args":{"depth":0}"#, r#""args":{"depth":0,"future":-1}"#)
        );
        assert_eq!(check_trace_text(&ok), Ok(1));
    }

    #[test]
    fn accepts_counter_series_after_spans() {
        let text = format!(
            "[{},{},{},{},{}]",
            event("degree", 0, 10),
            counter("mem.live_bytes", 15, r#"{"live_bytes":1024}"#),
            counter("mem.live_bytes", 25, r#"{"live_bytes":512}"#),
            counter(
                "query.has_edge_ns",
                30,
                r#"{"count":10,"p50":90,"p95":180,"p99":199}"#
            ),
            counter("pool.width", 30, r#"{"value":4}"#),
        );
        assert_eq!(check_trace_text(&text), Ok(5));
    }

    #[test]
    fn rejects_bad_counters() {
        let span = event("degree", 0, 10);

        // Unknown namespace.
        let text = format!(
            "[{},{}]",
            span,
            counter("rogue.metric", 20, r#"{"value":1}"#)
        );
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("known namespaces"), "{err}");

        // Counter series going backwards in time.
        let text = format!(
            "[{},{},{}]",
            span,
            counter("mem.live_bytes", 30, r#"{"live_bytes":1}"#),
            counter("mem.live_bytes", 20, r#"{"live_bytes":2}"#)
        );
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("backwards"), "{err}");

        // Empty args and negative values.
        let text = format!("[{},{}]", span, counter("mem.peak_bytes", 20, "{}"));
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("empty args"), "{err}");
        let text = format!(
            "[{},{}]",
            span,
            counter("pool.width", 20, r#"{"value":-4}"#)
        );
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");

        // Counters without any span events mean the recorder dropped spans.
        let text = format!("[{}]", counter("mem.peak_bytes", 20, r#"{"peak_bytes":1}"#));
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("no span events"), "{err}");
    }

    #[test]
    fn serving_window_counters_need_a_monotone_window_arg() {
        let span = event("degree", 0, 10);
        let win = |ts: i64, args: &str| counter("query.win.neighbors.hub", ts, args);

        // Well-formed series: window ordinal repeats or advances.
        let text = format!(
            "[{},{},{},{}]",
            span,
            win(
                20,
                r#"{"window":0,"count":10,"p50":90,"p95":180,"p99":199}"#
            ),
            win(
                30,
                r#"{"window":1,"count":12,"p50":91,"p95":181,"p99":200}"#
            ),
            counter(
                "query.win.qps",
                30,
                r#"{"window":1,"queries":22,"qps":2200}"#
            ),
        );
        assert_eq!(check_trace_text(&text), Ok(4));

        // Missing window arg.
        let text = format!("[{},{}]", span, win(20, r#"{"count":10}"#));
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("`window` arg"), "{err}");

        // Window ordinal going backwards within a counter name.
        let text = format!(
            "[{},{},{}]",
            span,
            win(20, r#"{"window":2,"count":1}"#),
            win(30, r#"{"window":1,"count":1}"#),
        );
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("window ordinal goes backwards"), "{err}");

        // Plain query.* counters (no .win.) stay exempt from the rule.
        let text = format!(
            "[{},{}]",
            span,
            counter("query.has_edge_ns", 20, r#"{"count":10}"#)
        );
        assert_eq!(check_trace_text(&text), Ok(2));
    }

    #[test]
    fn phase_and_exemplar_counters_are_windowed_series() {
        let span = event("degree", 0, 10);

        // Both namespaces require the window arg...
        for name in [
            "query.phase.exec.neighbors.hub",
            "query.exemplar.neighbors.hub",
        ] {
            let text = format!("[{},{}]", span, counter(name, 20, r#"{"count":1}"#));
            let err = check_trace_text(&text).unwrap_err();
            assert!(err.contains("`window` arg"), "{name}: {err}");
        }

        // ...and a backwards ordinal within a series trips the gate.
        let text = format!(
            "[{},{},{}]",
            span,
            counter(
                "query.phase.exec.neighbors.hub",
                20,
                r#"{"window":2,"count":1,"sum":10}"#
            ),
            counter(
                "query.phase.exec.neighbors.hub",
                30,
                r#"{"window":1,"count":1,"sum":10}"#
            ),
        );
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("window ordinal goes backwards"), "{err}");

        // A phase point without its `sum` cannot reconcile.
        let text = format!(
            "[{},{}]",
            span,
            counter(
                "query.phase.queue.neighbors.hub",
                20,
                r#"{"window":0,"count":1}"#
            )
        );
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("`sum` arg"), "{err}");
    }

    #[test]
    fn exemplars_must_carry_a_partitioned_phase_breakdown() {
        let span = event("degree", 0, 10);
        let ex = |args: &str| counter("query.exemplar.neighbors.hub", 20, args);

        // Well-formed exemplar: phases partition the total exactly.
        let text = format!(
            "[{},{}]",
            span,
            ex(r#"{"window":0,"source":7,"total":1000,"queue":100,"exec":890,"reply":10}"#)
        );
        assert_eq!(check_trace_text(&text), Ok(2));

        // Missing a phase field.
        let text = format!(
            "[{},{}]",
            span,
            ex(r#"{"window":0,"source":7,"total":1000,"queue":100,"exec":890}"#)
        );
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("`reply` arg"), "{err}");

        // Phases exceeding the total past the 10% tolerance.
        let text = format!(
            "[{},{}]",
            span,
            ex(r#"{"window":0,"source":7,"total":1000,"queue":600,"exec":600,"reply":0}"#)
        );
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("partition"), "{err}");
    }

    #[test]
    fn phase_sums_must_reconcile_with_their_cell() {
        let span = event("degree", 0, 10);
        let win = |sum: u64| {
            counter(
                "query.win.neighbors.hub",
                20,
                &format!(r#"{{"window":0,"count":10,"sum":{sum},"p50":90,"p95":180,"p99":199}}"#),
            )
        };
        let phase = |name: &str, sum: u64| {
            counter(
                &format!("query.phase.{name}.neighbors.hub"),
                25,
                &format!(r#"{{"window":0,"count":10,"sum":{sum},"p50":30,"p95":60,"p99":66}}"#),
            )
        };

        // Phases summing to the cell reconcile.
        let text = format!(
            "[{},{},{},{},{}]",
            span,
            win(1_000),
            phase("queue", 100),
            phase("exec", 890),
            phase("reply", 10),
        );
        assert_eq!(check_trace_text(&text), Ok(5));

        // Phases blowing past the cell's sum by more than 10% fail.
        let text = format!(
            "[{},{},{},{}]",
            span,
            win(1_000),
            phase("queue", 600),
            phase("exec", 600),
        );
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("more than 10%"), "{err}");

        // A cell whose `query.win` point has no `sum` (pre-phase trace) is
        // skipped, not failed.
        let old_win = counter(
            "query.win.neighbors.hub",
            20,
            r#"{"window":0,"count":10,"p50":90,"p95":180,"p99":199}"#,
        );
        let text = format!(
            "[{},{},{},{}]",
            span,
            old_win,
            phase("queue", 600),
            phase("exec", 600),
        );
        assert_eq!(check_trace_text(&text), Ok(4));
    }

    #[test]
    fn arg_typing_survives_the_shared_reader() {
        // `args` present but not an object is a span-level error here, not
        // a parse error in trace_read.
        let text = r#"[{"name":"a","ph":"X","ts":1,"dur":2,"pid":1,"tid":0,"args":[1]}]"#;
        let err = check_trace_text(text).unwrap_err();
        assert!(err.contains("not an object"), "{err}");
    }
}
