//! Validator for Chrome trace-event files produced by `parcsr-obs`
//! (`--trace` on the bench binaries and the CLI).
//!
//! CI runs a bench smoke with `--trace` and feeds the output through
//! `cargo xtask check-trace <file>`; the build fails if the trace is
//! missing, unparseable, empty, structurally malformed, or not
//! time-ordered per thread — the cheapest end-to-end proof that the
//! instrumentation actually recorded the pipeline.

use parcsr_obs::json::Json;

/// Validates trace text; returns the event count on success.
pub fn check_trace_text(text: &str) -> Result<usize, String> {
    let json = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = json
        .as_array()
        .ok_or_else(|| "top level is not an array of trace events".to_string())?;
    if events.is_empty() {
        return Err("trace contains no events (was the binary built with --features obs?)".into());
    }

    // (tid, last ts) pairs; traces have few distinct tids, linear scan is fine.
    let mut last_ts: Vec<(i64, f64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        if ev.as_object().is_none() {
            return Err(format!("event {i} is not an object"));
        }
        for field in ["name", "ph", "ts", "dur", "pid", "tid"] {
            if ev.get(field).is_none() {
                return Err(format!("event {i} is missing required field `{field}`"));
            }
        }
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            return Err(format!("event {i} is not a complete (`ph: \"X\"`) event"));
        }
        let tid = ev
            .get("tid")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("event {i} has a non-integer tid"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} has a non-numeric ts"))?;
        match last_ts.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, last)) => {
                if ts < *last {
                    return Err(format!(
                        "event {i} (tid {tid}) goes backwards in time: ts {ts} after {last}"
                    ));
                }
                *last = ts;
            }
            None => last_ts.push((tid, ts)),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, tid: i64, ts: i64) -> String {
        format!(
            r#"{{"name":"{name}","cat":"parcsr","ph":"X","ts":{ts},"dur":5,"pid":1,"tid":{tid},"args":{{"depth":0}}}}"#
        )
    }

    #[test]
    fn accepts_a_well_formed_trace() {
        let text = format!(
            "[{},{},{}]",
            event("degree", 0, 10),
            event("scan", 0, 20),
            event("degree.chunk", 1, 12)
        );
        assert_eq!(check_trace_text(&text), Ok(3));
    }

    #[test]
    fn rejects_garbage_and_empty() {
        assert!(check_trace_text("not json").is_err());
        assert!(check_trace_text("{}").is_err());
        let err = check_trace_text("[]").unwrap_err();
        assert!(err.contains("no events"), "{err}");
    }

    #[test]
    fn rejects_missing_fields_and_disorder() {
        let err = check_trace_text(r#"[{"name":"x","ph":"X"}]"#).unwrap_err();
        assert!(err.contains("missing required field"), "{err}");

        // Same tid going backwards in time must fail...
        let text = format!("[{},{}]", event("a", 0, 20), event("b", 0, 10));
        let err = check_trace_text(&text).unwrap_err();
        assert!(err.contains("backwards"), "{err}");

        // ...but interleaved tids each monotone are fine.
        let text = format!("[{},{}]", event("a", 0, 20), event("b", 1, 10));
        assert_eq!(check_trace_text(&text), Ok(2));
    }
}
