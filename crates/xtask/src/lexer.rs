//! A minimal hand-rolled Rust lexer for the token-aware lint passes.
//!
//! This is the structural upgrade of [`crate::lints`]' original line-based
//! `strip_code`: instead of stripped text it produces a real token stream
//! (identifiers, punctuation, delimiters, opaque literals) plus a brace-tree
//! of scopes with `fn`-item attribution, which is exactly the amount of
//! structure the workspace lints need — which function a token is in, which
//! scopes are open at a call site, where a `let` statement ends. It is *not*
//! a parser: no expression trees, no type grammar, no macro expansion. The
//! workspace is offline, so `syn` is not an option, and the lint rules are
//! conventions over surface syntax anyway.
//!
//! Handled faithfully because the lints would otherwise misfire:
//!
//! * line and (nested) block comments — dropped;
//! * string literals, raw strings (`r#"…"#`, any hash depth), byte and
//!   byte-raw strings — one opaque [`Kind::Lit`] token each, newlines inside
//!   counted so later tokens keep correct line numbers;
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped chars;
//! * raw identifiers (`r#match`);
//! * `::` fused into a single punctuation token (path matching);
//! * numbers lexed without consuming `.` so `0..10` stays three tokens.

/// Token category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `let`, `Vec`, …).
    Ident,
    /// Punctuation; `::` is fused, everything else is a single char.
    Punct,
    /// Opening delimiter `(`, `[` or `{`.
    Open,
    /// Closing delimiter `)`, `]` or `}`.
    Close,
    /// Any literal (string, raw string, char, byte, number); content opaque.
    Lit,
    /// Lifetime or loop label (`'a`, `'static`); text is the part after `'`.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Category.
    pub kind: Kind,
    /// Source text for idents/puncts/delimiters; empty for literals.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
    /// Innermost brace scope containing the token (index into
    /// [`Lexed::scopes`]). Delimiter tokens belong to the *outer* scope.
    pub scope: usize,
}

/// One `{ … }` scope in the brace tree. Scope 0 is the file root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scope {
    /// Enclosing scope, `None` for the root.
    pub parent: Option<usize>,
    /// `Some(name)` iff this brace pair is the body of `fn name`.
    pub fn_name: Option<String>,
    /// Line of the `fn` keyword when `fn_name` is set, else of the `{`.
    pub head_line: usize,
    /// Line the scope opens on (1-based; 1 for the root).
    pub open_line: usize,
    /// Line the scope closes on; `usize::MAX` if unclosed at EOF.
    pub close_line: usize,
}

/// A lexed file: flat token stream plus the scope tree.
#[derive(Debug)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Brace scopes; index 0 is the file root.
    pub scopes: Vec<Scope>,
}

impl Lexed {
    /// Lexes a source file. Never fails: malformed input degrades to
    /// best-effort tokens, which is fine for lint heuristics.
    #[must_use]
    pub fn lex(text: &str) -> Lexed {
        let raw = raw_tokens(text);
        attribute_scopes(raw)
    }

    /// The innermost enclosing `fn`-body scope of `scope`, if any.
    #[must_use]
    pub fn enclosing_fn(&self, mut scope: usize) -> Option<usize> {
        loop {
            if self.scopes[scope].fn_name.is_some() {
                return Some(scope);
            }
            scope = self.scopes[scope].parent?;
        }
    }

    /// True if `scope` is `ancestor` or nested (transitively) inside it.
    #[must_use]
    pub fn scope_within(&self, mut scope: usize, ancestor: usize) -> bool {
        loop {
            if scope == ancestor {
                return true;
            }
            match self.scopes[scope].parent {
                Some(p) => scope = p,
                None => return false,
            }
        }
    }
}

/// Pass 1: raw tokens with line numbers, scopes not yet assigned.
fn raw_tokens(text: &str) -> Vec<Token> {
    let b = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';

    // Advances past a (possibly raw, possibly byte) string body starting at
    // the opening quote, counting newlines. `hashes` is the raw-string hash
    // depth; `None` means a normal escaped string.
    let scan_string = |i: &mut usize, line: &mut usize, hashes: Option<usize>| {
        *i += 1; // opening quote
        while *i < b.len() {
            match b[*i] {
                b'\n' => {
                    *line += 1;
                    *i += 1;
                }
                b'\\' if hashes.is_none() => *i += 2,
                b'"' => match hashes {
                    None => {
                        *i += 1;
                        return;
                    }
                    Some(h) => {
                        let trailing = b[*i + 1..].iter().take_while(|&&c| c == b'#').count();
                        if trailing >= h {
                            *i += 1 + h;
                            return;
                        }
                        *i += 1;
                    }
                },
                _ => *i += 1,
            }
        }
    };

    while i < b.len() {
        let c = b[i];
        let start_line = line;
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Rust block comments nest.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                scan_string(&mut i, &mut line, None);
                tokens.push(lit(start_line));
            }
            b'\'' => {
                // Char literal or lifetime/label.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: skip the escape, then the quote.
                    i += 2;
                    if b.get(i) == Some(&b'u') {
                        while i < b.len() && b[i] != b'}' {
                            i += 1;
                        }
                        i += 1;
                    } else if b.get(i) == Some(&b'x') {
                        i += 3;
                    } else {
                        i += 1;
                    }
                    if b.get(i) == Some(&b'\'') {
                        i += 1;
                    }
                    tokens.push(lit(start_line));
                } else if b.get(i + 2) == Some(&b'\'') {
                    i += 3; // 'x'
                    tokens.push(lit(start_line));
                } else {
                    // Lifetime: consume ident chars after the quote.
                    let s = i + 1;
                    i += 1;
                    while i < b.len() && is_ident(b[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: Kind::Lifetime,
                        text: text[s..i].to_string(),
                        line: start_line,
                        scope: 0,
                    });
                }
            }
            b'r' if b.get(i + 1).is_some_and(|&n| n == b'"' || n == b'#') => {
                let h = b[i + 1..].iter().take_while(|&&c| c == b'#').count();
                if b.get(i + 1 + h) == Some(&b'"') {
                    i += 1 + h;
                    scan_string(&mut i, &mut line, Some(h));
                    tokens.push(lit(start_line));
                } else if h >= 1 && b.get(i + 2).is_some_and(|&n| is_ident(n)) {
                    // Raw identifier r#name.
                    let s = i + 2;
                    i += 2;
                    while i < b.len() && is_ident(b[i]) {
                        i += 1;
                    }
                    tokens.push(ident(&text[s..i], start_line));
                } else {
                    i = push_ident(text, i, start_line, &mut tokens);
                }
            }
            b'b' if b
                .get(i + 1)
                .is_some_and(|&n| n == b'"' || n == b'\'' || n == b'r') =>
            {
                match b[i + 1] {
                    b'"' => {
                        i += 1;
                        scan_string(&mut i, &mut line, None);
                        tokens.push(lit(start_line));
                    }
                    b'\'' => {
                        // Byte char literal: b'x' or b'\n'.
                        i += 2;
                        if b.get(i) == Some(&b'\\') {
                            i += 2;
                        } else {
                            i += 1;
                        }
                        if b.get(i) == Some(&b'\'') {
                            i += 1;
                        }
                        tokens.push(lit(start_line));
                    }
                    _ => {
                        // br"…" / br#"…"# or just an ident starting with br.
                        let h = b[i + 2..].iter().take_while(|&&c| c == b'#').count();
                        if b.get(i + 2 + h) == Some(&b'"') {
                            i += 2 + h;
                            scan_string(&mut i, &mut line, Some(h));
                            tokens.push(lit(start_line));
                        } else {
                            i = push_ident(text, i, start_line, &mut tokens);
                        }
                    }
                }
            }
            _ if c.is_ascii_digit() => {
                // Number: alphanumerics and underscores, but never `.` so
                // range expressions like `0..10` keep their punctuation.
                while i < b.len() && is_ident(b[i]) {
                    i += 1;
                }
                tokens.push(lit(start_line));
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                i = push_ident(text, i, start_line, &mut tokens);
            }
            b'(' | b'[' | b'{' => {
                tokens.push(Token {
                    kind: Kind::Open,
                    text: (c as char).to_string(),
                    line: start_line,
                    scope: 0,
                });
                i += 1;
            }
            b')' | b']' | b'}' => {
                tokens.push(Token {
                    kind: Kind::Close,
                    text: (c as char).to_string(),
                    line: start_line,
                    scope: 0,
                });
                i += 1;
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                tokens.push(Token {
                    kind: Kind::Punct,
                    text: "::".to_string(),
                    line: start_line,
                    scope: 0,
                });
                i += 2;
            }
            _ if c.is_ascii() => {
                tokens.push(Token {
                    kind: Kind::Punct,
                    text: (c as char).to_string(),
                    line: start_line,
                    scope: 0,
                });
                i += 1;
            }
            _ => i += 1, // non-ASCII outside strings: skip the byte
        }
    }
    tokens
}

fn lit(line: usize) -> Token {
    Token {
        kind: Kind::Lit,
        text: String::new(),
        line,
        scope: 0,
    }
}

fn ident(text: &str, line: usize) -> Token {
    Token {
        kind: Kind::Ident,
        text: text.to_string(),
        line,
        scope: 0,
    }
}

fn push_ident(text: &str, start: usize, line: usize, tokens: &mut Vec<Token>) -> usize {
    let b = text.as_bytes();
    let mut i = start;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    tokens.push(ident(&text[start..i], line));
    i
}

/// Tracks a pending `fn` item between its keyword and its body brace.
enum FnState {
    None,
    /// Saw `fn`, expecting the item name next.
    ExpectName,
    /// Saw `fn name`; the next `{` at signature depth 0 opens its body.
    /// `depth` counts `(`/`[` nesting so `;` inside `[u8; 4]` and braces
    /// inside parameter lists do not end or misbind the signature.
    Armed {
        name: String,
        fn_line: usize,
        depth: usize,
    },
}

/// Pass 2: assigns scope ids, builds the brace tree, and binds `fn` items
/// to their body scopes.
fn attribute_scopes(mut tokens: Vec<Token>) -> Lexed {
    let mut scopes = vec![Scope {
        parent: None,
        fn_name: None,
        head_line: 1,
        open_line: 1,
        close_line: usize::MAX,
    }];
    let mut stack: Vec<usize> = vec![0];
    let mut state = FnState::None;

    for idx in 0..tokens.len() {
        let current = *stack.last().expect("root scope never popped");
        tokens[idx].scope = current;
        // `fn` immediately followed by `(` is a function-pointer *type*
        // (`fn(u32) -> u32`), not an item: it must not touch the state, or
        // a pointer-typed parameter would steal the enclosing item's name.
        let fn_pointer_type = tokens[idx].kind == Kind::Ident
            && tokens[idx].text == "fn"
            && tokens
                .get(idx + 1)
                .is_some_and(|n| n.kind == Kind::Open && n.text == "(");
        let tok = &mut tokens[idx];
        match tok.kind {
            _ if fn_pointer_type => {}
            Kind::Ident if tok.text == "fn" => state = FnState::ExpectName,
            Kind::Ident => {
                if let FnState::ExpectName = state {
                    state = FnState::Armed {
                        name: tok.text.clone(),
                        fn_line: tok.line,
                        depth: 0,
                    };
                }
            }
            Kind::Open if tok.text == "{" => {
                let fn_name = match &mut state {
                    FnState::Armed { name, depth: 0, .. } => {
                        let name = std::mem::take(name);
                        Some(name)
                    }
                    _ => None,
                };
                let head_line = match (&fn_name, &state) {
                    (Some(_), FnState::Armed { fn_line, .. }) => *fn_line,
                    _ => tok.line,
                };
                if fn_name.is_some() {
                    state = FnState::None;
                }
                scopes.push(Scope {
                    parent: Some(current),
                    fn_name,
                    head_line,
                    open_line: tok.line,
                    close_line: usize::MAX,
                });
                stack.push(scopes.len() - 1);
            }
            Kind::Open => {
                if let FnState::Armed { depth, .. } = &mut state {
                    *depth += 1;
                }
            }
            Kind::Close if tok.text == "}" => {
                if stack.len() > 1 {
                    let closed = stack.pop().expect("non-empty");
                    scopes[closed].close_line = tok.line;
                    tok.scope = *stack.last().expect("root scope never popped");
                }
            }
            Kind::Close => {
                if let FnState::Armed { depth, .. } = &mut state {
                    *depth = depth.saturating_sub(1);
                }
            }
            Kind::Punct if tok.text == ";" => {
                if let FnState::Armed { depth: 0, .. } = state {
                    state = FnState::None; // bodiless trait fn
                }
            }
            _ => {
                if let FnState::ExpectName = state {
                    // `fn(u32) -> u32` function-pointer type: no item name.
                    state = FnState::None;
                }
            }
        }
    }
    Lexed { tokens, scopes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_and_strings_are_dropped() {
        let src = "fn f() { // Vec::new in a comment\n    let s = \"Vec::new\"; /* vec![ */ }\n";
        let lexed = Lexed::lex(src);
        assert_eq!(idents(&lexed), ["fn", "f", "let", "s"]);
    }

    #[test]
    fn raw_strings_do_not_derail_the_scanner() {
        let src = "fn f() { let s = r#\"unsafe { \" } \"#; let t = 1; }";
        let lexed = Lexed::lex(src);
        assert_eq!(idents(&lexed), ["fn", "f", "let", "s", "let", "t"]);
        // The brace inside the raw string must not have opened a scope.
        assert_eq!(lexed.scopes.len(), 2);
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let src = "let a = \"x\ny\nz\";\nlet b = 0;";
        let lexed = Lexed::lex(src);
        let b = lexed.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let src = "fn f<'a>(x: &'a u8) { let c = '{'; let q = '\\''; let n = '\\n'; }";
        let lexed = Lexed::lex(src);
        // The '{' char literal must not open a scope: one fn body only.
        assert_eq!(lexed.scopes.len(), 2);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        assert_eq!(idents(&Lexed::lex(src)), ["fn", "f"]);
    }

    #[test]
    fn path_separator_is_one_token() {
        let src = "Vec::new()";
        let lexed = Lexed::lex(src);
        assert_eq!(lexed.tokens[1].kind, Kind::Punct);
        assert_eq!(lexed.tokens[1].text, "::");
    }

    #[test]
    fn ranges_keep_their_dots() {
        let src = "for i in 0..10 {}";
        let lexed = Lexed::lex(src);
        let dots = lexed.tokens.iter().filter(|t| t.text == ".").count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn fn_scopes_are_attributed() {
        let src = "\
fn outer(x: [u8; 4]) -> u32 {
    let c = |y: u32| { y + 1 };
    fn inner() {}
    c(0)
}
";
        let lexed = Lexed::lex(src);
        let named: Vec<_> = lexed
            .scopes
            .iter()
            .filter_map(|s| s.fn_name.as_deref())
            .collect();
        assert_eq!(named, ["outer", "inner"]);
        // The closure body is a scope without a fn name, nested in `outer`.
        let outer = lexed
            .scopes
            .iter()
            .position(|s| s.fn_name.as_deref() == Some("outer"))
            .unwrap();
        let closure = lexed
            .scopes
            .iter()
            .position(|s| s.fn_name.is_none() && s.parent == Some(outer))
            .unwrap();
        assert!(lexed.scope_within(closure, outer));
        assert_eq!(lexed.enclosing_fn(closure), Some(outer));
    }

    #[test]
    fn bodiless_trait_fn_does_not_capture_next_brace() {
        let src = "trait T { fn named(&self); }\nfn real() {}";
        let lexed = Lexed::lex(src);
        let named: Vec<_> = lexed
            .scopes
            .iter()
            .filter_map(|s| s.fn_name.as_deref())
            .collect();
        assert_eq!(named, ["real"]);
    }

    #[test]
    fn fn_pointer_type_does_not_arm() {
        let src = "fn apply(g: fn(u32) -> u32) { g(1); }";
        let lexed = Lexed::lex(src);
        let named: Vec<_> = lexed
            .scopes
            .iter()
            .filter_map(|s| s.fn_name.as_deref())
            .collect();
        assert_eq!(named, ["apply"]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let src = "fn r#match() {}";
        assert_eq!(idents(&Lexed::lex(src)), ["fn", "match"]);
    }

    #[test]
    fn byte_strings_are_opaque() {
        let src = "let x = b\"{ unsafe \"; let y = br#\"} vec![ \"#;";
        assert_eq!(idents(&Lexed::lex(src)), ["let", "x", "let", "y"]);
    }

    #[test]
    fn scope_close_lines_are_recorded() {
        let src = "fn f() {\n    {\n    }\n}\n";
        let lexed = Lexed::lex(src);
        assert_eq!(lexed.scopes[1].close_line, 4);
        assert_eq!(lexed.scopes[2].close_line, 3);
    }
}
