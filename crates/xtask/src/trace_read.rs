//! Shared reader for Chrome trace-event JSON, used by `check-trace`,
//! `stage-diff`, and `trace-analyze` — one parser, one set of error
//! messages, instead of each command re-walking raw [`Json`].
//!
//! Parsing here is *structural*: the file must be a non-empty JSON array of
//! objects, each with a `name`, a numeric `ts`, a known phase (`"X"`
//! complete spans or `"C"` counters), and the per-phase required fields.
//! Semantic rules (time ordering, arg typing, counter namespaces) stay with
//! the commands that care about them.

use parcsr_obs::json::Json;

/// Trace-event phase, as written by the `parcsr-obs` exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete (`"ph": "X"`) span event.
    Complete,
    /// A counter (`"ph": "C"`) event.
    Counter,
}

/// One parsed trace event with the fields every consumer needs, plus the
/// raw `args` object for consumers that dig deeper.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Event name (span stage name or counter metric name).
    pub name: String,
    /// Event phase.
    pub ph: Phase,
    /// Timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (`0` for counters or a missing value — the
    /// exporter always writes `dur` on spans and `check-trace` enforces its
    /// presence).
    pub dur_us: f64,
    /// Thread id (`0` = coordinator).
    pub tid: i64,
    /// The raw `args` object, when present.
    pub args: Option<Json>,
}

impl TraceEvent {
    /// A numeric arg by key, as `i64` (`None` when absent or non-integer).
    pub fn arg_i64(&self, key: &str) -> Option<i64> {
        self.args.as_ref()?.get(key).and_then(Json::as_i64)
    }

    /// A non-negative numeric arg by key, as `u64`.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.arg_i64(key).and_then(|v| u64::try_from(v).ok())
    }
}

/// Reads a file for command `cmd`, with the commands' shared error shape.
pub fn read_file(cmd: &str, path: &std::path::Path) -> Result<String, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("xtask {cmd}: cannot read {}: {e}", path.display()))
}

/// Parses `text` as a labeled JSON document (`"{which}: not valid JSON"`),
/// the shape `stage-diff` reports per side.
pub fn parse_json(which: &str, text: &str) -> Result<Json, String> {
    Json::parse(text).map_err(|e| format!("{which}: not valid JSON: {e}"))
}

/// Parses Chrome trace text into events. Errors use the exact messages
/// `check-trace` has always reported (its tests pin them).
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let json = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = json
        .as_array()
        .ok_or_else(|| "top level is not an array of trace events".to_string())?;
    if events.is_empty() {
        return Err("trace contains no events (was the binary built with --features obs?)".into());
    }
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        if ev.as_object().is_none() {
            return Err(format!("event {i} is not an object"));
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} is missing required field `name`"))?
            .to_string();
        let ts_us = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} has a missing or non-numeric ts"))?;
        let ph = match ev.get("ph").and_then(Json::as_str) {
            Some("X") => Phase::Complete,
            Some("C") => Phase::Counter,
            _ => {
                return Err(format!(
                    "event {i} is neither a complete (`\"X\"`) nor a counter (`\"C\"`) event"
                ));
            }
        };
        let required: &[&str] = match ph {
            Phase::Complete => &["dur", "pid", "tid"],
            Phase::Counter => &["pid", "tid"],
        };
        for field in required {
            if ev.get(field).is_none() {
                return Err(format!("event {i} is missing required field `{field}`"));
            }
        }
        let tid = match ph {
            Phase::Complete => ev
                .get("tid")
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("event {i} has a non-integer tid"))?,
            // Counters carry tid 0 by construction; only presence is
            // required of them.
            Phase::Counter => ev.get("tid").and_then(Json::as_i64).unwrap_or(0),
        };
        let dur_us = ev.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
        out.push(TraceEvent {
            name,
            ph,
            ts_us,
            dur_us,
            tid,
            args: ev.get("args").cloned(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spans_and_counters() {
        let text = r#"[
            {"name":"degree","ph":"X","ts":10.5,"dur":5.25,"pid":1,"tid":0,
             "args":{"depth":0,"edges":16}},
            {"name":"mem.live_bytes","ph":"C","ts":20,"pid":1,"tid":0,
             "args":{"live_bytes":1024}}
        ]"#;
        let events = parse_trace(text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].ph, Phase::Complete);
        assert_eq!(events[0].name, "degree");
        assert_eq!(events[0].ts_us, 10.5);
        assert_eq!(events[0].dur_us, 5.25);
        assert_eq!(events[0].arg_u64("depth"), Some(0));
        assert_eq!(events[0].arg_u64("edges"), Some(16));
        assert_eq!(events[0].arg_u64("chunk"), None);
        assert_eq!(events[1].ph, Phase::Counter);
        assert_eq!(events[1].dur_us, 0.0);
    }

    #[test]
    fn error_messages_match_the_historical_checker() {
        assert!(parse_trace("nope").unwrap_err().contains("not valid JSON"));
        assert!(parse_trace("{}")
            .unwrap_err()
            .contains("not an array of trace events"));
        assert!(parse_trace("[]").unwrap_err().contains("no events"));
        assert!(parse_trace("[3]").unwrap_err().contains("not an object"));
        assert!(parse_trace(r#"[{"ph":"X"}]"#)
            .unwrap_err()
            .contains("`name`"));
        assert!(parse_trace(r#"[{"name":"a","ph":"X","ts":"x"}]"#)
            .unwrap_err()
            .contains("non-numeric ts"));
        assert!(parse_trace(r#"[{"name":"a","ph":"X","ts":1}]"#)
            .unwrap_err()
            .contains("missing required field `dur`"));
        assert!(parse_trace(r#"[{"name":"a","ph":"B","ts":1}]"#)
            .unwrap_err()
            .contains("neither a complete"));
        assert!(
            parse_trace(r#"[{"name":"a","ph":"X","ts":1,"dur":1,"pid":1,"tid":1.5}]"#)
                .unwrap_err()
                .contains("non-integer tid")
        );
    }

    #[test]
    fn labeled_json_parse_reports_the_side() {
        assert!(parse_json("baseline", "nope")
            .unwrap_err()
            .starts_with("baseline: not valid JSON"));
        assert!(parse_json("current", "[]").is_ok());
    }
}
