//! Library surface of the workspace automation driver: the hand-rolled
//! Rust lexer, the static-analysis passes built on it, and the fixture
//! corpus harness that keeps the passes honest. The `cargo xtask` binary
//! (`src/main.rs`) drives these; integration tests exercise them directly.

pub mod fixtures;
pub mod lexer;
pub mod lints;
