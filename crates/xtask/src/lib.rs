//! Library surface of the workspace automation driver: the hand-rolled
//! Rust lexer, the static-analysis passes built on it, the fixture
//! corpus harness that keeps the passes honest, and the artifact
//! validators (`check-trace`'s semantic rules, `slo-check`'s result
//! gating, `expo-check`'s exposition rules). The `cargo xtask` binary
//! (`src/main.rs`) drives these;
//! integration tests exercise them directly.

pub mod expo_check;
pub mod fixtures;
pub mod lexer;
pub mod lints;
pub mod slo_check;
pub mod trace_check;
pub mod trace_read;
