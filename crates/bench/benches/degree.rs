//! Degree-computation microbench: the paper's side-array design
//! (Algorithms 2–3) across processor counts, against the atomic
//! fetch-add-per-edge ablation (DESIGN.md ablation "boundary side-array").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parcsr::{degrees_atomic, degrees_parallel, with_processors};
use parcsr_graph::gen::{rmat, RmatParams};
use parcsr_graph::Edge;

fn sorted_edges() -> (Vec<Edge>, usize) {
    let g = rmat(RmatParams::new(1 << 15, 1 << 19, 42)).sorted_by_source();
    let n = g.num_nodes();
    (g.into_edges(), n)
}

fn bench_degree(c: &mut Criterion) {
    let (edges, n) = sorted_edges();
    let mut group = c.benchmark_group("degree");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.sample_size(20);

    for &p in &[1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("side-array", p), &edges, |b, edges| {
            with_processors(p, || {
                b.iter(|| black_box(degrees_parallel(edges, n, p)));
            });
        });
    }

    group.bench_with_input(BenchmarkId::new("atomic", "pool"), &edges, |b, edges| {
        b.iter(|| black_box(degrees_atomic(edges, n)));
    });
    group.finish();
}

criterion_group!(benches, bench_degree);
criterion_main!(benches);
