//! Succinct-structure comparison: the bit-packed CSR against the
//! related-work structures it competes with (Section II) — a wavelet tree
//! over the column array and a k²-tree over the adjacency matrix — on size
//! and query latency.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use parcsr::{BitPackedCsr, Csr, CsrBuilder, PackedCsrMode};
use parcsr_graph::gen::{rmat, RmatParams};
use parcsr_succinct::{K2Tree, WaveletTree};

const N: usize = 1 << 13;
const M: usize = 1 << 17;

struct Fixtures {
    csr: Csr,
    packed: BitPackedCsr,
    wavelet: WaveletTree,
    k2: K2Tree,
    probes: Vec<(u32, u32)>,
}

fn fixtures() -> Fixtures {
    let graph = rmat(RmatParams::new(N, M, 42)).deduped();
    let csr = CsrBuilder::new().build(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 8);
    let columns: Vec<u32> = csr.targets().to_vec();
    let wavelet = WaveletTree::new(&columns, N as u32);
    let k2 = K2Tree::from_edges(N, graph.edges());
    let probes: Vec<(u32, u32)> = (0..4096)
        .map(|i| {
            if i % 2 == 0 {
                graph.edges()[(i * 37) % graph.num_edges()]
            } else {
                (((i * 48271) % N) as u32, ((i * 16807) % N) as u32)
            }
        })
        .collect();
    eprintln!(
        "succinct sizes on {} edges: csr={} B, packed={} B, k2tree={} B (bits only)",
        csr.num_edges(),
        csr.heap_bytes(),
        packed.packed_bytes(),
        k2.packed_bytes()
    );
    Fixtures {
        csr,
        packed,
        wavelet,
        k2,
        probes,
    }
}

fn bench_edge_probes(c: &mut Criterion) {
    let f = fixtures();
    let mut group = c.benchmark_group("succinct_edge_probe");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("csr-binary-search", |b| {
        b.iter(|| {
            f.probes
                .iter()
                .filter(|&&(u, v)| f.csr.has_edge(u, v))
                .count()
        })
    });
    group.bench_function("packed-csr", |b| {
        b.iter(|| {
            f.probes
                .iter()
                .filter(|&&(u, v)| f.packed.has_edge(u, v))
                .count()
        })
    });
    group.bench_function("k2tree", |b| {
        b.iter(|| {
            f.probes
                .iter()
                .filter(|&&(u, v)| f.k2.has_edge(u, v))
                .count()
        })
    });
    group.finish();
}

fn bench_reverse_neighbors(c: &mut Criterion) {
    // In-neighbor queries: CSR needs a transpose; the wavelet tree and the
    // k²-tree answer directly.
    let f = fixtures();
    let targets: Vec<u32> = (0..64).map(|i| (i * 251) as u32 % N as u32).collect();
    let mut group = c.benchmark_group("succinct_in_neighbors");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("wavelet-select", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &v in &targets {
                let deg = f.wavelet.count(v);
                for k in 0..deg {
                    total += black_box(f.wavelet.select(v, k)).is_some() as usize;
                }
            }
            total
        })
    });
    group.bench_function("k2tree-column", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &v in &targets {
                total += black_box(f.k2.column(v)).len();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_edge_probes, bench_reverse_neighbors);
criterion_main!(benches);
