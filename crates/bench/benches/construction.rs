//! End-to-end construction microbench — the Criterion counterpart of
//! Figure 6: time to build (and pack) the CSR at each processor count, on a
//! skewed R-MAT graph and an unskewed Erdős–Rényi control of equal size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parcsr::{with_processors, BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_graph::gen::{erdos_renyi, rmat, ErParams, RmatParams};
use parcsr_graph::EdgeList;

const N: usize = 1 << 15;
const M: usize = 1 << 19;

fn bench_construction(c: &mut Criterion) {
    let graphs: [(&str, EdgeList); 2] = [
        ("rmat", rmat(RmatParams::new(N, M, 42)).sorted_by_source()),
        (
            "er",
            erdos_renyi(ErParams::new(N, M, 42)).sorted_by_source(),
        ),
    ];
    let mut group = c.benchmark_group("construction");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.throughput(Throughput::Elements(M as u64));
    for (name, graph) in &graphs {
        for &p in &[1usize, 2, 4, 8, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("csr/{name}"), p),
                graph,
                |b, graph| {
                    with_processors(p, || {
                        let builder = CsrBuilder::new().processors(p);
                        b.iter(|| black_box(builder.build_from_sorted(graph).0));
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_packing_stage(c: &mut Criterion) {
    // Algorithm 4 in isolation: packing a built CSR at each processor count.
    let graph = rmat(RmatParams::new(N, M, 42));
    let csr = CsrBuilder::new().build(&graph);
    let mut group = c.benchmark_group("pack_stage");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.throughput(Throughput::Elements(M as u64));
    for &p in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &csr, |b, csr| {
            with_processors(p, || {
                b.iter(|| black_box(BitPackedCsr::from_csr(csr, PackedCsrMode::Gap, p)));
            });
        });
    }
    group.finish();
}

fn bench_sort_stage(c: &mut Criterion) {
    // The pre-processing the paper assumes away: rayon's parallel
    // comparison sort vs the LSD radix sort (DESIGN.md ablation "sort").
    let graph = rmat(RmatParams::new(N, M, 42));
    let mut group = c.benchmark_group("sort_stage");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.throughput(Throughput::Elements(M as u64));
    group.bench_function("comparison", |b| {
        b.iter(|| black_box(graph.sorted_by_source()));
    });
    for &chunks in &[4usize, 16] {
        group.bench_with_input(BenchmarkId::new("radix", chunks), &graph, |b, g| {
            b.iter(|| black_box(g.sorted_by_source_radix(chunks)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_packing_stage,
    bench_sort_stage
);
criterion_main!(benches);
