//! Temporal-structure comparison bench: the differential TCSR vs. the
//! related-work log structures (EveLog, EdgeLog) on identical workloads —
//! build time, compressed size, and the point-query cost that motivates
//! moving beyond sequential log scans.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use parcsr_graph::gen::{temporal_toggles, TemporalParams};
use parcsr_graph::TemporalEdgeList;
use parcsr_temporal::{EdgeLog, EveLog, TcsrBuilder};

fn workload() -> TemporalEdgeList {
    temporal_toggles(TemporalParams::new(1 << 11, 1 << 15, 48, 42))
}

fn bench_builds(c: &mut Criterion) {
    let events = workload();
    let mut group = c.benchmark_group("temporal_build");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("tcsr", |b| {
        let builder = TcsrBuilder::new();
        b.iter(|| black_box(builder.build(&events)));
    });
    group.bench_function("evelog", |b| b.iter(|| black_box(EveLog::build(&events))));
    group.bench_function("edgelog", |b| b.iter(|| black_box(EdgeLog::build(&events))));

    let tcsr = TcsrBuilder::new().build(&events);
    let eve = EveLog::build(&events);
    let edge = EdgeLog::build(&events);
    eprintln!(
        "temporal sizes: tcsr={} B, evelog={} B, edgelog={} B ({} events, {} frames)",
        tcsr.packed_bytes(),
        eve.packed_bytes(),
        edge.packed_bytes(),
        events.num_events(),
        events.num_frames()
    );
    group.finish();
}

fn bench_point_queries(c: &mut Criterion) {
    let events = workload();
    let tcsr = TcsrBuilder::new().build(&events);
    let eve = EveLog::build(&events);
    let edge = EdgeLog::build(&events);
    let t = (events.num_frames() - 1) as u32;
    // Query the busiest vertex (longest log — EveLog's worst case).
    let u = (0..events.num_nodes() as u32)
        .max_by_key(|&u| events.events().iter().filter(|e| e.u == u).count())
        .unwrap();
    let v = events.events().iter().find(|e| e.u == u).unwrap().v;

    let mut group = c.benchmark_group("temporal_point_query");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("tcsr", |b| {
        b.iter(|| black_box(tcsr.edge_active_at(u, v, t)))
    });
    group.bench_function("evelog-scan", |b| {
        b.iter(|| black_box(eve.edge_active_at(u, v, t)))
    });
    group.bench_function("edgelog-intervals", |b| {
        b.iter(|| black_box(edge.edge_active_at(u, v, t)))
    });
    group.finish();
}

fn bench_neighborhood_queries(c: &mut Criterion) {
    let events = workload();
    let tcsr = TcsrBuilder::new().build(&events);
    let eve = EveLog::build(&events);
    let edge = EdgeLog::build(&events);
    let t = (events.num_frames() / 2) as u32;
    let nodes: Vec<u32> = (0..256).map(|i| (i * 8) as u32).collect();

    let mut group = c.benchmark_group("temporal_neighbors");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("tcsr", |b| {
        b.iter(|| {
            for &u in &nodes {
                black_box(tcsr.neighbors_at(u, t));
            }
        })
    });
    group.bench_function("evelog", |b| {
        b.iter(|| {
            for &u in &nodes {
                black_box(eve.neighbors_at(u, t));
            }
        })
    });
    group.bench_function("edgelog", |b| {
        b.iter(|| {
            for &u in &nodes {
                black_box(edge.neighbors_at(u, t));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_builds,
    bench_point_queries,
    bench_neighborhood_queries
);
criterion_main!(benches);
