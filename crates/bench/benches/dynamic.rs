//! Dynamic-structure microbench: PMA-backed edge updates vs. rebuilding the
//! static CSR — quantifying the trade the related work (PCSR) makes and the
//! paper declines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parcsr::CsrBuilder;
use parcsr_dynamic::{DynamicCsr, Pma};
use parcsr_graph::gen::{rmat, RmatParams};
use parcsr_graph::EdgeList;

fn bench_pma_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("pma_insert");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[10_000usize, 50_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, &n| {
            let keys: Vec<u64> = (0..n as u64)
                .map(|i| (i * 2654435761) % (4 * n as u64))
                .collect();
            b.iter(|| {
                let mut pma = Pma::new();
                for &k in &keys {
                    pma.insert(k);
                }
                black_box(pma.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("ascending", n), &n, |b, &n| {
            b.iter(|| {
                let mut pma = Pma::new();
                for k in 0..n as u64 {
                    pma.insert(k);
                }
                black_box(pma.len())
            });
        });
    }
    group.finish();
}

fn bench_update_vs_rebuild(c: &mut Criterion) {
    // The headline comparison: apply k edge updates to (a) a dynamic PCSR,
    // (b) a static CSR by full rebuild.
    let base = rmat(RmatParams::new(1 << 13, 1 << 16, 42)).deduped();
    let updates: Vec<(u32, u32)> = (0..1_000u32)
        .map(|i| ((i * 48271) % (1 << 13), (i * 16807) % (1 << 13)))
        .collect();

    let mut group = c.benchmark_group("updates_1000");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("pcsr-dynamic", |b| {
        let loaded = DynamicCsr::from_edge_list(&base);
        b.iter(|| {
            let mut g = loaded.clone();
            for &(u, v) in &updates {
                g.insert_edge(u, v);
            }
            black_box(g.num_edges())
        });
    });
    group.bench_function("static-rebuild", |b| {
        b.iter(|| {
            let mut edges = base.edges().to_vec();
            edges.extend_from_slice(&updates);
            let g = EdgeList::new(base.num_nodes(), edges);
            black_box(CsrBuilder::new().build(&g).num_edges())
        });
    });
    group.finish();
}

fn bench_dynamic_queries(c: &mut Criterion) {
    let base = rmat(RmatParams::new(1 << 13, 1 << 16, 42)).deduped();
    let dynamic = DynamicCsr::from_edge_list(&base);
    let csr = CsrBuilder::new().build(&base);
    let mut group = c.benchmark_group("neighbor_query");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("pcsr-dynamic", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for u in (0..1 << 13).step_by(37) {
                total += black_box(dynamic.neighbors(u as u32)).len();
            }
            total
        });
    });
    group.bench_function("static-csr", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for u in (0..1 << 13).step_by(37) {
                total += black_box(csr.neighbors(u as u32)).len();
            }
            total
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pma_inserts,
    bench_update_vs_rebuild,
    bench_dynamic_queries
);
criterion_main!(benches);
