//! Bit-packing microbench: parallel chunk-and-merge packing across
//! processor counts and value widths, fixed-width vs. varint codecs, and the
//! gap-coding ablation on the packed CSR (DESIGN.md ablations "gap coding").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parcsr::{BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_bitpack::{pack_parallel, varint_encode_stream, PackedArray};
use parcsr_graph::gen::{rmat, RmatParams};

fn bench_pack_parallel(c: &mut Criterion) {
    let values: Vec<u64> = (0..1_000_000u64)
        .map(|i| (i * 2654435761) % (1 << 20))
        .collect();
    let mut group = c.benchmark_group("pack_parallel");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.throughput(Throughput::Elements(values.len() as u64));
    for &chunks in &[1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(chunks), &values, |b, v| {
            b.iter(|| black_box(pack_parallel(v, chunks)));
        });
    }
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    // Fixed-width vs. varint on uniform small values (fixed-width's home
    // turf) and on heavy-tailed gaps (varint's).
    let uniform: Vec<u64> = (0..1_000_000u64).map(|i| i % 512).collect();
    let heavy: Vec<u64> = (0..1_000_000u64)
        .map(|i| if i % 100 == 0 { 1 << 40 } else { i % 8 })
        .collect();
    let mut group = c.benchmark_group("codecs");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for (name, data) in [("uniform", &uniform), ("heavy-tail", &heavy)] {
        group.throughput(Throughput::Elements(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("fixed", name), data, |b, d| {
            b.iter(|| black_box(PackedArray::pack(d)));
        });
        group.bench_with_input(BenchmarkId::new("varint", name), data, |b, d| {
            b.iter(|| black_box(varint_encode_stream(d)));
        });
    }
    group.finish();
}

fn bench_gap_ablation(c: &mut Criterion) {
    let graph = rmat(RmatParams::new(1 << 14, 1 << 18, 42));
    let csr = CsrBuilder::new().build(&graph);
    let mut group = c.benchmark_group("packed_csr_mode");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
        group.bench_with_input(BenchmarkId::from_parameter(mode.name()), &csr, |b, csr| {
            b.iter(|| black_box(BitPackedCsr::from_csr(csr, mode, 8)));
        });
    }
    // Report the sizes once so the ablation's space side is visible in the
    // bench log.
    let raw = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 8);
    let gap = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 8);
    eprintln!(
        "packed_csr_mode sizes: unpacked={} B, raw={} B ({} b/col), gap={} B ({} b/col)",
        csr.heap_bytes(),
        raw.packed_bytes(),
        raw.column_width(),
        gap.packed_bytes(),
        gap.column_width()
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_pack_parallel,
    bench_codecs,
    bench_gap_ablation
);
criterion_main!(benches);
