//! Scan microbench: the paper's chunked Algorithm 1 vs. the lockstep
//! transcription, Blelloch's tree scan, the idiomatic two-pass scan, and the
//! sequential baseline, across input sizes (DESIGN.md µ-bench "scan" and the
//! two-pass ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parcsr_scan::{ScanAlgorithm, Scanner};

fn input(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| (i * 2654435761) % 1000).collect()
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[10_000usize, 400_000] {
        let data = input(n);
        group.throughput(Throughput::Elements(n as u64));
        for alg in ScanAlgorithm::ALL {
            group.bench_with_input(BenchmarkId::new(alg.name(), n), &data, |b, data| {
                let scanner = Scanner::new(alg);
                b.iter(|| {
                    let mut v = data.clone();
                    scanner.inclusive_scan_in_place(&mut v);
                    black_box(v)
                });
            });
        }
    }
    group.finish();
}

fn bench_scan_chunk_sweep(c: &mut Criterion) {
    // How the paper's algorithm scales with the number of chunks at a fixed
    // input size.
    let mut group = c.benchmark_group("scan_chunks");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let data = input(400_000);
    group.throughput(Throughput::Elements(data.len() as u64));
    for &chunks in &[1usize, 2, 4, 8, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(chunks), &data, |b, data| {
            let scanner = Scanner::with_chunks(ScanAlgorithm::Chunked, chunks);
            b.iter(|| {
                let mut v = data.clone();
                scanner.inclusive_scan_in_place(&mut v);
                black_box(v)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan, bench_scan_chunk_sweep);
criterion_main!(benches);
