//! Time-evolving CSR microbench (Section IV): parallel TCSR construction
//! across processor counts, differential vs. absolute storage size and query
//! cost, and snapshot reconstruction via the symmetric-difference scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parcsr::with_processors;
use parcsr_graph::gen::{temporal_toggles, TemporalParams};
use parcsr_graph::TemporalEdgeList;
use parcsr_temporal::{AbsoluteFrames, FrameMode, TcsrBuilder};

fn workload() -> TemporalEdgeList {
    temporal_toggles(TemporalParams::new(1 << 12, 1 << 16, 64, 42))
}

fn bench_build(c: &mut Criterion) {
    let events = workload();
    let mut group = c.benchmark_group("tcsr_build");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.num_events() as u64));
    for &p in &[1usize, 2, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &events, |b, events| {
            with_processors(p, || {
                let builder = TcsrBuilder::new().processors(p);
                b.iter(|| black_box(builder.build(events)));
            });
        });
    }
    group.finish();
}

fn bench_snapshots(c: &mut Criterion) {
    let events = workload();
    let tcsr = TcsrBuilder::new().build(&events);
    let last = (tcsr.num_frames() - 1) as u32;
    let mut group = c.benchmark_group("tcsr_snapshot");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);

    group.bench_function("single/last-frame", |b| {
        b.iter(|| black_box(tcsr.snapshot_at(last)))
    });
    for &p in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("all-frames-scan", p), &tcsr, |b, tcsr| {
            with_processors(p, || b.iter(|| black_box(tcsr.snapshots_all(p))));
        });
    }
    group.finish();
}

fn bench_point_queries(c: &mut Criterion) {
    let events = workload();
    let diff = TcsrBuilder::new().build(&events);
    let small = temporal_toggles(TemporalParams::new(1 << 10, 1 << 13, 16, 7));
    let absolute = AbsoluteFrames::build(&small, 4);
    let diff_small = TcsrBuilder::new().build(&small);
    let t_small = (absolute.num_frames() - 1) as u32;
    let t = (diff.num_frames() - 1) as u32;

    let mut group = c.benchmark_group("tcsr_point_query");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("differential/edge_active", |b| {
        b.iter(|| black_box(diff.edge_active_at(5, 9, t)))
    });
    group.bench_function("differential-small/edge_active", |b| {
        b.iter(|| black_box(diff_small.edge_active_at(5, 9, t_small)))
    });
    group.bench_function("absolute-small/edge_active", |b| {
        b.iter(|| black_box(absolute.edge_active_at(5, 9, t_small)))
    });
    eprintln!(
        "tcsr storage: differential={} B vs absolute={} B ({} frames, small workload)",
        diff_small.packed_bytes(),
        absolute.packed_bytes(),
        absolute.num_frames()
    );
    group.finish();
}

fn bench_frame_modes(c: &mut Criterion) {
    let events = workload();
    let mut group = c.benchmark_group("tcsr_frame_mode");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for mode in [FrameMode::Random, FrameMode::Gap] {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &events,
            |b, events| {
                let builder = TcsrBuilder::new().frame_mode(mode);
                b.iter(|| black_box(builder.build(events)));
            },
        );
    }
    let r = TcsrBuilder::new()
        .frame_mode(FrameMode::Random)
        .build(&events);
    let g = TcsrBuilder::new().frame_mode(FrameMode::Gap).build(&events);
    eprintln!(
        "tcsr frame-mode sizes: random={} B, gap={} B",
        r.packed_bytes(),
        g.packed_bytes()
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_snapshots,
    bench_point_queries,
    bench_frame_modes
);
criterion_main!(benches);
