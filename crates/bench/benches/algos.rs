//! Analytics microbench: the downstream workloads (BFS, PageRank,
//! components, triangles, SpGEMM) on the plain vs. the bit-packed CSR — the
//! realistic measure of what querying the compressed structure costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use parcsr::{BitPackedCsr, Csr, CsrBuilder, PackedCsrMode};
use parcsr_algos::{
    bfs_parallel, connected_components_parallel, count_triangles, pagerank, two_hop, PageRankConfig,
};
use parcsr_graph::gen::{rmat, RmatParams};
use parcsr_graph::EdgeList;

fn fixtures() -> (EdgeList, Csr, BitPackedCsr) {
    let graph = rmat(RmatParams::new(1 << 13, 1 << 17, 42)).symmetrized();
    let csr = CsrBuilder::new().build(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 8);
    (graph, csr, packed)
}

fn bench_bfs(c: &mut Criterion) {
    let (_, csr, packed) = fixtures();
    let hub = (0..csr.num_nodes() as u32)
        .max_by_key(|&u| csr.degree(u))
        .unwrap();
    let mut group = c.benchmark_group("bfs");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("plain", hub), &csr, |b, csr| {
        b.iter(|| black_box(bfs_parallel(csr, hub)));
    });
    group.bench_with_input(BenchmarkId::new("packed", hub), &packed, |b, packed| {
        b.iter(|| black_box(bfs_parallel(packed, hub)));
    });
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let (_, csr, _) = fixtures();
    let mut group = c.benchmark_group("pagerank");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let config = PageRankConfig {
        max_iterations: 20,
        tolerance: 0.0, // fixed work per iteration for stable measurements
        ..Default::default()
    };
    group.bench_function("20-iterations", |b| {
        b.iter(|| black_box(pagerank(&csr, config)));
    });
    group.finish();
}

fn bench_components_and_triangles(c: &mut Criterion) {
    let (graph, csr, _) = fixtures();
    let mut group = c.benchmark_group("analytics");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("connected-components", |b| {
        b.iter(|| black_box(connected_components_parallel(&csr)));
    });
    group.bench_function("triangles", |b| {
        b.iter(|| black_box(count_triangles(&graph)));
    });
    group.finish();
}

fn bench_spgemm(c: &mut Criterion) {
    // Smaller input: A·A is dense-ish on power-law graphs.
    let graph = rmat(RmatParams::new(1 << 11, 1 << 14, 42));
    let csr = CsrBuilder::new().build(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 8);
    let mut group = c.benchmark_group("spgemm_two_hop");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("plain", |b| b.iter(|| black_box(two_hop(&csr))));
    group.bench_function("packed", |b| b.iter(|| black_box(two_hop(&packed))));
    group.finish();
}

fn bench_centrality(c: &mut Criterion) {
    use parcsr_algos::{betweenness_sampled, kcore_parallel};
    let graph = rmat(RmatParams::new(1 << 11, 1 << 14, 42)).symmetrized();
    let csr = CsrBuilder::new().build(&graph);
    let mut group = c.benchmark_group("centrality");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("betweenness-64-samples", |b| {
        b.iter(|| black_box(betweenness_sampled(&csr, 64, 7)));
    });
    group.bench_function("kcore", |b| {
        b.iter(|| black_box(kcore_parallel(&csr)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs,
    bench_pagerank,
    bench_components_and_triangles,
    bench_spgemm,
    bench_centrality
);
criterion_main!(benches);
