//! Query microbench (Section V / Algorithm 9): batch neighborhood and
//! edge-existence queries across processor counts, on the plain CSR, the
//! bit-packed CSR, and the three baselines; plus the single-edge split
//! search on a hub row (Algorithm 8) and its binary-search refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use parcsr::query::{
    edge_exists_split, edge_exists_split_binary, edges_exist_batch, edges_exist_batch_binary,
    neighbors_batch,
};
use parcsr::{with_processors, BitPackedCsr, Csr, CsrBuilder, NeighborSource, PackedCsrMode};
use parcsr_baseline::{AdjacencyList, EdgeListStore, GraphStore};
use parcsr_graph::gen::{rmat, RmatParams};
use parcsr_graph::{EdgeList, NodeId};

const N: usize = 1 << 14;
const M: usize = 1 << 18;
const QUERIES: usize = 1 << 12;

struct Fixtures {
    csr: Csr,
    packed: BitPackedCsr,
    adj: AdjacencyList,
    flat: EdgeListStore,
    node_queries: Vec<NodeId>,
    edge_queries: Vec<(NodeId, NodeId)>,
}

fn fixtures() -> Fixtures {
    let graph = rmat(RmatParams::new(N, M, 42));
    let csr = CsrBuilder::new().build(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 8);
    let adj = AdjacencyList::from_edge_list(&graph);
    let flat = EdgeListStore::from_edge_list(&graph);
    let node_queries: Vec<NodeId> = (0..QUERIES)
        .map(|i| ((i * 2654435761) % N) as NodeId)
        .collect();
    // Half existing edges, half random probes.
    let edge_queries: Vec<(NodeId, NodeId)> = (0..QUERIES)
        .map(|i| {
            if i % 2 == 0 {
                graph.edges()[(i * 31) % graph.num_edges()]
            } else {
                (((i * 48271) % N) as NodeId, ((i * 16807) % N) as NodeId)
            }
        })
        .collect();
    Fixtures {
        csr,
        packed,
        adj,
        flat,
        node_queries,
        edge_queries,
    }
}

/// Adapter so baselines run through the same batch drivers as the CSRs.
struct StoreAdapter<'a, S: GraphStore + Sync>(&'a S);

impl<S: GraphStore + Sync> NeighborSource for StoreAdapter<'_, S> {
    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }
    fn degree(&self, u: NodeId) -> usize {
        self.0.degree(u)
    }
    fn row_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        self.0.row_into(u, out)
    }
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.0.has_edge(u, v)
    }
}

fn bench_neighbors_batch(c: &mut Criterion) {
    let f = fixtures();
    let mut group = c.benchmark_group("neighbors_batch");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.throughput(Throughput::Elements(f.node_queries.len() as u64));
    for &p in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("csr", p), &f, |b, f| {
            with_processors(p, || {
                b.iter(|| black_box(neighbors_batch(&f.csr, &f.node_queries, p)))
            });
        });
        group.bench_with_input(BenchmarkId::new("packed", p), &f, |b, f| {
            with_processors(p, || {
                b.iter(|| black_box(neighbors_batch(&f.packed, &f.node_queries, p)))
            });
        });
    }
    group.bench_with_input(BenchmarkId::new("adjacency-list", 8), &f, |b, f| {
        with_processors(8, || {
            b.iter(|| black_box(neighbors_batch(&StoreAdapter(&f.adj), &f.node_queries, 8)))
        });
    });
    group.bench_with_input(BenchmarkId::new("edge-list", 8), &f, |b, f| {
        with_processors(8, || {
            b.iter(|| black_box(neighbors_batch(&StoreAdapter(&f.flat), &f.node_queries, 8)))
        });
    });
    group.finish();
}

fn bench_edges_exist_batch(c: &mut Criterion) {
    let f = fixtures();
    let mut group = c.benchmark_group("edges_exist_batch");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.throughput(Throughput::Elements(f.edge_queries.len() as u64));
    for &p in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("packed/linear", p), &f, |b, f| {
            with_processors(p, || {
                b.iter(|| black_box(edges_exist_batch(&f.packed, &f.edge_queries, p)))
            });
        });
        group.bench_with_input(BenchmarkId::new("packed/binary", p), &f, |b, f| {
            with_processors(p, || {
                b.iter(|| black_box(edges_exist_batch_binary(&f.packed, &f.edge_queries, p)))
            });
        });
    }
    group.bench_with_input(BenchmarkId::new("csr", 8), &f, |b, f| {
        with_processors(8, || {
            b.iter(|| black_box(edges_exist_batch_binary(&f.csr, &f.edge_queries, 8)))
        });
    });
    group.finish();
}

/// The streaming-vs-materializing row-access dimension: for both packing
/// modes, answer the same batch of neighborhood queries by (a) decoding each
/// row into a reused `Vec` (`row_into`) and (b) streaming it through the
/// allocation-free cursor (`row_iter`). Each variant folds the visited
/// neighbor ids so the decode work cannot be optimized away.
fn bench_row_access(c: &mut Criterion) {
    let graph = rmat(RmatParams::new(N, M, 42));
    let csr = CsrBuilder::new().build(&graph);
    let node_queries: Vec<NodeId> = (0..QUERIES)
        .map(|i| ((i * 2654435761) % N) as NodeId)
        .collect();
    let visited: u64 = node_queries.iter().map(|&u| csr.degree(u) as u64).sum();

    let mut group = c.benchmark_group("row_access");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.throughput(Throughput::Elements(visited));
    for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
        let packed = BitPackedCsr::from_csr(&csr, mode, 8);
        group.bench_with_input(
            BenchmarkId::new(mode.name(), "decode"),
            &packed,
            |b, packed| {
                let mut row = Vec::new();
                b.iter(|| {
                    let mut acc = 0u64;
                    for &u in &node_queries {
                        packed.row_into(u, &mut row);
                        for &v in &row {
                            acc ^= u64::from(v);
                        }
                    }
                    black_box(acc)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new(mode.name(), "stream"),
            &packed,
            |b, packed| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &u in &node_queries {
                        for v in packed.row_iter(u) {
                            acc ^= u64::from(v);
                        }
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

fn bench_single_edge_split(c: &mut Criterion) {
    // A dedicated hub graph: Algorithm 8's split search only pays off on
    // long rows.
    let hub_edges: Vec<(NodeId, NodeId)> = (0..250_000u32).map(|v| (0, v)).collect();
    let graph = EdgeList::new(250_001, hub_edges);
    let csr = CsrBuilder::new().build(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 8);
    let probe: NodeId = 249_999; // worst case for the linear scan

    let mut group = c.benchmark_group("single_edge_split");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for &p in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("linear", p), &packed, |b, packed| {
            with_processors(p, || {
                b.iter(|| black_box(edge_exists_split(packed, 0, probe, p)))
            });
        });
        group.bench_with_input(BenchmarkId::new("binary", p), &packed, |b, packed| {
            with_processors(p, || {
                b.iter(|| black_box(edge_exists_split_binary(packed, 0, probe, p)))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_neighbors_batch,
    bench_edges_exist_batch,
    bench_row_access,
    bench_single_edge_split
);
criterion_main!(benches);
