//! Closed-loop serving load driver (the harness side of DESIGN.md §8).
//!
//! `N` logical clients issue single queries back-to-back against a built
//! [`BitPackedCsr`]: each client picks a query kind from a configurable
//! Algorithm 6/7/8 mix, picks the queried node Zipf-skewed *by degree rank*
//! (rank 1 = highest-degree node, so the skew is degree-correlated the way
//! real serving traffic is), times the call with a wall clock, and records
//! the latency into a driver-owned [`QuerySlabs`] shard. A reporter on the
//! main thread rotates the slab windows every `--window-ms` and snapshots
//! per-window throughput and latency percentiles, per query kind and per
//! degree class.
//!
//! Closed-loop means each client waits for its own previous query — offered
//! load adapts to service time, so the reported qps is the *sustained*
//! throughput at the observed latencies, the quantity an SLO is written
//! against (`cargo xtask slo-check` consumes the JSON this module emits).
//!
//! Two measurement paths coexist on purpose:
//!
//! * the driver's own slabs time the full client-observed request with
//!   `Instant` — always on, no feature needed — stamping the four phase
//!   checkpoints (`queued` at query selection, `dispatched` before the
//!   call, `executed` after it returns, `replied` after bookkeeping), so
//!   queue-wait vs execute time is a first-class split and each window
//!   keeps its slowest requests as tail exemplars;
//! * built `--features obs`, the query internals *also* record into the
//!   process-global serving slabs, and the reporter rotates those in step,
//!   so `--trace` exports `query.win.*` counter events for `chrome://tracing`
//!   and `cargo xtask check-trace`.
//!
//! Each client wraps its loop in [`with_processors`]`(1, ..)`: the rayon
//! shim runs width-1 pools inline on the calling thread, so a length-1
//! batch costs no thread spawn and the measured latency is the query, not
//! the pool.

// ORDERING: the only atomic is the clients' stop flag — a pure
// advisory signal with no data published alongside it, so Relaxed
// everywhere in this file.
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::{Duration, Instant};

use rand::distr::Zipf;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use parcsr::query::{
    edge_exists_split, edges_exist_batch, edges_exist_batch_binary, neighbors_batch,
};
use parcsr::{with_processors, BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_graph::{EdgeList, NodeId};
use parcsr_obs::metrics::HistogramSummary;
use parcsr_obs::serve::{
    DegreeClass, Exemplar, PhaseNanos, QueryKind, QueryPhase, QuerySlabs, EXEMPLARS_PER_SHARD,
};

use crate::json::{Json, ToJson};

/// Result-JSON schema tag; bump when the shape changes incompatibly.
pub const SCHEMA: &str = "parcsr.closed_loop.v1";

/// Schema tag of the tail-exemplar block inside the result JSON.
pub const EXEMPLAR_SCHEMA: &str = "parcsr.exemplars.v1";

/// Mix entries, in fixed order: neighbors (Alg 6), edge_scan (Alg 7),
/// edge_binary (Alg 7 binary), split (Alg 8).
pub const MIX_KINDS: [QueryKind; 4] = [
    QueryKind::Neighbors,
    QueryKind::EdgeScan,
    QueryKind::EdgeBinary,
    QueryKind::SplitSearch,
];

/// Which graph the driver serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// The imbalance study's hub graph: 64 hub rows carry ~half the edges
    /// (~2.02M edges at scale 1.0) — the adversarial serving shape.
    Hub,
    /// The WebNotreDame profile stand-in (power-law, no planted hub block).
    Web,
}

impl GraphKind {
    /// Parses `hub` / `web`.
    pub fn parse(s: &str) -> Result<GraphKind, String> {
        match s {
            "hub" => Ok(GraphKind::Hub),
            "web" => Ok(GraphKind::Web),
            other => Err(format!("unknown graph {other:?} (hub|web)")),
        }
    }

    /// Stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Hub => "hub",
            GraphKind::Web => "web",
        }
    }
}

/// Driver options (`queries_closed_loop` flags).
#[derive(Debug, Clone, PartialEq)]
pub struct DriverOptions {
    /// Which graph to serve.
    pub graph: GraphKind,
    /// Size fraction: scales the hub graph's node count and hub degree, or
    /// the WebNotreDame published size.
    pub scale: f64,
    /// Logical closed-loop clients (one OS thread each).
    pub clients: usize,
    /// Total driving time in milliseconds.
    pub duration_ms: u64,
    /// Reporting window length in milliseconds.
    pub window_ms: u64,
    /// Query-mix weights for [`MIX_KINDS`] (need not sum to 100).
    pub mix: [u32; 4],
    /// Zipf exponent of the degree-rank skew (`0` = uniform).
    pub zipf_s: f64,
    /// RNG seed (each client derives its own stream).
    pub seed: u64,
    /// Emit the result as JSON on stdout (the human table moves to stderr).
    pub json: bool,
    /// SLO target: overall p99 latency must be ≤ this many ns.
    pub p99_ns: Option<u64>,
    /// SLO target: sustained qps must be ≥ this.
    pub min_qps: Option<f64>,
    /// Write a Chrome trace of the run (needs `--features obs`).
    pub trace: Option<String>,
    /// Print the obs metrics summary to stderr (needs `--features obs`).
    pub metrics: bool,
    /// Span sampling period for the trace.
    pub trace_sample: Option<u32>,
    /// Serve the live admin plane (metrics/stats/health) on
    /// `127.0.0.1:<port>` for the duration of the run (needs
    /// `--features obs`; `0` picks an ephemeral port).
    pub admin_port: Option<u16>,
}

impl Default for DriverOptions {
    fn default() -> Self {
        DriverOptions {
            graph: GraphKind::Hub,
            scale: 1.0,
            clients: 4,
            duration_ms: 2_000,
            window_ms: 250,
            mix: [45, 25, 20, 10],
            zipf_s: 1.0,
            seed: 42,
            json: false,
            p99_ns: None,
            min_qps: None,
            trace: None,
            metrics: false,
            trace_sample: None,
            admin_port: None,
        }
    }
}

impl DriverOptions {
    /// Parses `--flag value` style arguments; returns an error message
    /// naming the offending flag on failure.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<DriverOptions, String> {
        let mut opts = DriverOptions::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match flag.as_str() {
                "--graph" => opts.graph = GraphKind::parse(&value("--graph")?)?,
                "--scale" => {
                    opts.scale = value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?;
                    if !opts.scale.is_finite() || opts.scale <= 0.0 {
                        return Err("--scale must be positive".into());
                    }
                }
                "--clients" => {
                    opts.clients = value("--clients")?
                        .parse()
                        .map_err(|e| format!("--clients: {e}"))?;
                    if opts.clients == 0 {
                        return Err("--clients must be at least 1".into());
                    }
                }
                "--duration-ms" => {
                    opts.duration_ms = value("--duration-ms")?
                        .parse()
                        .map_err(|e| format!("--duration-ms: {e}"))?;
                    if opts.duration_ms == 0 {
                        return Err("--duration-ms must be at least 1".into());
                    }
                }
                "--window-ms" => {
                    opts.window_ms = value("--window-ms")?
                        .parse()
                        .map_err(|e| format!("--window-ms: {e}"))?;
                    if opts.window_ms == 0 {
                        return Err("--window-ms must be at least 1".into());
                    }
                }
                "--mix" => {
                    let raw = value("--mix")?;
                    let parts: Vec<u32> = raw
                        .split(',')
                        .map(|s| s.trim().parse::<u32>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| format!("--mix: {e}"))?;
                    let mix: [u32; 4] = parts.try_into().map_err(|_| {
                        "--mix needs exactly 4 comma-separated weights \
                                      (neighbors,edge_scan,edge_binary,split)"
                            .to_string()
                    })?;
                    if mix.iter().all(|&w| w == 0) {
                        return Err("--mix needs at least one positive weight".into());
                    }
                    opts.mix = mix;
                }
                "--zipf-s" => {
                    opts.zipf_s = value("--zipf-s")?
                        .parse()
                        .map_err(|e| format!("--zipf-s: {e}"))?;
                    if !opts.zipf_s.is_finite() || opts.zipf_s < 0.0 {
                        return Err("--zipf-s must be finite and non-negative".into());
                    }
                }
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--json" => opts.json = true,
                "--p99-ns" => {
                    opts.p99_ns = Some(
                        value("--p99-ns")?
                            .parse()
                            .map_err(|e| format!("--p99-ns: {e}"))?,
                    );
                }
                "--min-qps" => {
                    let q: f64 = value("--min-qps")?
                        .parse()
                        .map_err(|e| format!("--min-qps: {e}"))?;
                    if !q.is_finite() || q < 0.0 {
                        return Err("--min-qps must be finite and non-negative".into());
                    }
                    opts.min_qps = Some(q);
                }
                "--trace" => opts.trace = Some(value("--trace")?),
                "--metrics" => opts.metrics = true,
                "--trace-sample" => {
                    let n: u32 = value("--trace-sample")?
                        .parse()
                        .map_err(|e| format!("--trace-sample: {e}"))?;
                    if n == 0 {
                        return Err("--trace-sample must be at least 1".into());
                    }
                    opts.trace_sample = Some(n);
                }
                "--admin-port" => {
                    let p: u16 = value("--admin-port")?
                        .parse()
                        .map_err(|e| format!("--admin-port: {e}"))?;
                    opts.admin_port = Some(p);
                }
                "--help" | "-h" => return Err(HELP.to_string()),
                other => return Err(format!("unknown flag {other} (try --help)")),
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments, exiting with the message on error.
    pub fn from_env() -> DriverOptions {
        match DriverOptions::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(if msg == HELP { 0 } else { 2 });
            }
        }
    }
}

/// `--help` text (public so the bin's exit-status test can compare).
pub const HELP: &str = "\
Closed-loop serving load driver: N clients issue Zipf-skewed query mixes
against a packed CSR; reports per-window qps and latency percentiles.

Flags:
  --graph <hub|web>   graph to serve (default hub: 64 hub rows, ~half the edges)
  --scale <f>         size fraction (default 1.0 = ~2.02M-edge hub graph)
  --clients <n>       logical closed-loop clients (default 4)
  --duration-ms <n>   total driving time (default 2000)
  --window-ms <n>     reporting window length (default 250)
  --mix <a,b,c,d>     weights for neighbors,edge_scan,edge_binary,split
                      (default 45,25,20,10; need not sum to 100)
  --zipf-s <f>        Zipf exponent of the degree-rank skew (default 1.0; 0 = uniform)
  --seed <n>          RNG seed (default 42)
  --json              emit the result JSON on stdout (table moves to stderr)
  --p99-ns <n>        SLO: overall p99 latency must be <= n ns
  --min-qps <f>       SLO: sustained throughput must be >= f queries/s
  --trace <file>      write a Chrome trace with query.win.* counter events
  --metrics           print the obs metrics summary to stderr
  --trace-sample <n>  record every nth same-name span per thread
  --admin-port <p>    serve live metrics/stats/health on 127.0.0.1:p while
                      the run drives load (0 picks an ephemeral port)
                      (observability flags need a build with --features obs)";

/// Starts the admin plane for [`DriverOptions::admin_port`], reporting the
/// bound address (or why it is unavailable) on stderr. Returns the server
/// handle so the caller scopes the listener to the run; `None` when no
/// port was requested or the plane is not compiled in. Kept out of [`run`]
/// so the driver itself stays side-effect free for library callers.
pub fn spawn_admin(opts: &DriverOptions) -> Option<parcsr_server::admin::AdminServer> {
    let port = opts.admin_port?;
    match parcsr_server::admin::spawn(port) {
        Ok(server) => {
            // A live admin plane implies live metrics: turn runtime
            // recording on even when no --trace/--metrics flag did.
            parcsr_obs::set_enabled(true);
            eprintln!("admin: listening on {}", server.local_addr());
            Some(server)
        }
        Err(e) => {
            eprintln!("admin: --admin-port unavailable: {e}");
            None
        }
    }
}

/// Hub-graph shape constants at scale 1.0 (mirrors `examples/imbalance.rs`,
/// which records the measured imbalance story for the same graph).
const HUB_NODES: u32 = 200_000;
const HUB_PER_NODE: u32 = 5;
const HUB_ROWS: u32 = 64;
const HUB_DEGREE: u32 = 16_000;

/// Deterministic skewed hub graph, scaled: every node emits `HUB_PER_NODE`
/// edges to LCG-scattered targets and the first `HUB_ROWS` nodes each fan
/// out to `scale * HUB_DEGREE` extra targets, so the hub block keeps its
/// ~50% edge share at any scale.
#[must_use]
pub fn hub_graph(scale: f64) -> EdgeList {
    let nodes = (((HUB_NODES as f64) * scale) as u32).max(HUB_ROWS * 2);
    let hub_degree = (((HUB_DEGREE as f64) * scale) as u32)
        .max(16)
        .min(nodes - 1);
    let mut edges = Vec::with_capacity((nodes * HUB_PER_NODE + HUB_ROWS * hub_degree) as usize);
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = |bound: u32| {
        // MMIX LCG; the top bits scatter targets well enough for a
        // synthetic workload.
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((state >> 33) % u64::from(bound)) as u32
    };
    for u in 0..nodes {
        for _ in 0..HUB_PER_NODE {
            edges.push((u, next(nodes)));
        }
    }
    for hub in 0..HUB_ROWS {
        for i in 0..hub_degree {
            edges.push((hub, (hub + 1 + i) % nodes));
        }
    }
    EdgeList::new(nodes as usize, edges)
}

/// Builds the graph the options ask for; returns `(display name, edges)`.
#[must_use]
pub fn build_graph(opts: &DriverOptions) -> (String, EdgeList) {
    match opts.graph {
        GraphKind::Hub => (format!("hub@{}", opts.scale), hub_graph(opts.scale)),
        GraphKind::Web => {
            let profile = &parcsr_graph::paper_datasets()[3]; // WebNotreDame
            (
                format!("{}@{}", profile.name, opts.scale),
                profile.synthesize(opts.scale.min(0.5), opts.seed),
            )
        }
    }
}

/// One rolled-up latency cell (a query kind or a degree class) of a window
/// or of the whole run.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Cell name (`neighbors`, …, `low`/`mid`/`hub`, or `queue`/`exec`/`reply`).
    pub name: &'static str,
    /// Observations in the cell.
    pub count: u64,
    /// Total time spent in the cell, ns (lets consumers compute the share
    /// of wall time a phase or class accounts for).
    pub sum_ns: u64,
    /// Latency percentiles, ns.
    pub p50_ns: u64,
    /// 95th percentile, ns.
    pub p95_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Exact maximum, ns.
    pub max_ns: u64,
}

impl CellReport {
    fn from_summary(name: &'static str, s: &HistogramSummary) -> CellReport {
        CellReport {
            name,
            count: s.count,
            sum_ns: s.sum,
            p50_ns: s.p50,
            p95_ns: s.p95,
            p99_ns: s.p99,
            max_ns: s.max,
        }
    }
}

impl ToJson for CellReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.into())),
            ("count".into(), Json::Int(self.count as i64)),
            ("sum_ns".into(), Json::Int(self.sum_ns as i64)),
            ("p50_ns".into(), Json::Int(self.p50_ns as i64)),
            ("p95_ns".into(), Json::Int(self.p95_ns as i64)),
            ("p99_ns".into(), Json::Int(self.p99_ns as i64)),
            ("max_ns".into(), Json::Int(self.max_ns as i64)),
        ])
    }
}

/// The per-phase rollup of one degree class over the whole run — the
/// "where does hub time go" row of EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct ClassPhases {
    /// Degree class name (`low`/`mid`/`hub`).
    pub class: &'static str,
    /// Non-empty per-phase rollups (`queue`/`exec`/`reply`).
    pub phases: Vec<CellReport>,
}

impl ToJson for ClassPhases {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("class".into(), Json::Str(self.class.into())),
            ("phases".into(), self.phases.as_slice().to_json()),
        ])
    }
}

/// The tail exemplars one reporting window retained: the slowest requests
/// with their full phase breakdown.
#[derive(Debug, Clone)]
pub struct WindowExemplars {
    /// Window ordinal the exemplars were captured in.
    pub window: u64,
    /// Slowest-first exemplars (at most [`EXEMPLARS_PER_SHARD`]).
    pub exemplars: Vec<Exemplar>,
}

impl ToJson for WindowExemplars {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("window".into(), Json::Int(self.window as i64)),
            (
                "exemplars".into(),
                Json::Array(
                    self.exemplars
                        .iter()
                        .map(|e| {
                            Json::Object(vec![
                                ("kind".into(), Json::Str(e.kind.name().into())),
                                ("class".into(), Json::Str(e.class.name().into())),
                                ("source".into(), Json::Int(e.source as i64)),
                                ("total_ns".into(), Json::Int(e.ns.total_ns as i64)),
                                ("queue_ns".into(), Json::Int(e.ns.queue_ns as i64)),
                                ("exec_ns".into(), Json::Int(e.ns.exec_ns as i64)),
                                ("reply_ns".into(), Json::Int(e.ns.reply_ns as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One completed reporting window.
#[derive(Debug, Clone)]
pub struct WindowReport {
    /// Window ordinal (0-based; a trailing partial window may follow the
    /// last full one).
    pub window: u64,
    /// Window open, ms since the run started.
    pub start_ms: f64,
    /// Window length, ms (wall-clock measured, not the nominal flag value).
    pub dur_ms: f64,
    /// Queries completed in the window.
    pub requests: u64,
    /// Completed queries per second.
    pub qps: f64,
    /// Overall latency percentiles for the window, ns.
    pub p50_ns: u64,
    /// 95th percentile, ns.
    pub p95_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Non-empty per-kind rollups.
    pub kinds: Vec<CellReport>,
    /// Non-empty per-degree-class rollups.
    pub classes: Vec<CellReport>,
    /// Non-empty per-phase rollups (`queue`/`exec`/`reply`); the phases
    /// partition each request's end-to-end time, so their `sum_ns` values
    /// add up to the window's total time.
    pub phases: Vec<CellReport>,
}

impl ToJson for WindowReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("window".into(), Json::Int(self.window as i64)),
            ("start_ms".into(), Json::Float(self.start_ms)),
            ("dur_ms".into(), Json::Float(self.dur_ms)),
            ("requests".into(), Json::Int(self.requests as i64)),
            ("qps".into(), Json::Float(self.qps)),
            ("p50_ns".into(), Json::Int(self.p50_ns as i64)),
            ("p95_ns".into(), Json::Int(self.p95_ns as i64)),
            ("p99_ns".into(), Json::Int(self.p99_ns as i64)),
            ("kinds".into(), self.kinds.as_slice().to_json()),
            ("classes".into(), self.classes.as_slice().to_json()),
            ("phases".into(), self.phases.as_slice().to_json()),
        ])
    }
}

/// Achieved-vs-target SLO verdict.
#[derive(Debug, Clone)]
pub struct SloReport {
    /// `--p99-ns` target, if set.
    pub target_p99_ns: Option<u64>,
    /// `--min-qps` target, if set.
    pub target_min_qps: Option<f64>,
    /// Whole-run p99 latency, ns.
    pub achieved_p99_ns: u64,
    /// Whole-run sustained throughput, queries/s.
    pub achieved_qps: f64,
    /// Whether every set target was met (`None` when no target was set).
    pub met: Option<bool>,
}

impl ToJson for SloReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            (
                "target_p99_ns".into(),
                self.target_p99_ns
                    .map_or(Json::Null, |v| Json::Int(v as i64)),
            ),
            (
                "target_min_qps".into(),
                self.target_min_qps.map_or(Json::Null, Json::Float),
            ),
            (
                "achieved_p99_ns".into(),
                Json::Int(self.achieved_p99_ns as i64),
            ),
            ("achieved_qps".into(), Json::Float(self.achieved_qps)),
            ("met".into(), self.met.map_or(Json::Null, Json::Bool)),
        ])
    }
}

/// Whole driver run: config echo, per-window series, lifetime rollup, SLO.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Graph display name (`hub@1` / `WebNotreDame@0.25`).
    pub graph: String,
    /// Node count served.
    pub nodes: usize,
    /// Edge count served.
    pub edges: usize,
    /// Client count.
    pub clients: usize,
    /// Query-mix weights as configured.
    pub mix: [u32; 4],
    /// Zipf exponent as configured.
    pub zipf_s: f64,
    /// Seed as configured.
    pub seed: u64,
    /// Measured run length, ms.
    pub elapsed_ms: f64,
    /// Completed reporting windows (last entry may be a partial tail).
    pub windows: Vec<WindowReport>,
    /// Lifetime rollup across all windows.
    pub overall: WindowReport,
    /// Per-degree-class phase decomposition over the whole run.
    pub class_phases: Vec<ClassPhases>,
    /// Per-window tail exemplars (windows that retained none are omitted).
    pub exemplars: Vec<WindowExemplars>,
    /// Achieved-vs-target verdict.
    pub slo: SloReport,
}

impl ToJson for DriverReport {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("schema".into(), Json::Str(SCHEMA.into())),
            ("graph".into(), Json::Str(self.graph.clone())),
            ("nodes".into(), Json::Int(self.nodes as i64)),
            ("edges".into(), Json::Int(self.edges as i64)),
            ("clients".into(), Json::Int(self.clients as i64)),
            (
                "mix".into(),
                Json::Array(self.mix.iter().map(|&w| Json::Int(w as i64)).collect()),
            ),
            ("zipf_s".into(), Json::Float(self.zipf_s)),
            ("seed".into(), Json::Int(self.seed as i64)),
            ("elapsed_ms".into(), Json::Float(self.elapsed_ms)),
            ("windows".into(), self.windows.as_slice().to_json()),
            ("overall".into(), self.overall.to_json()),
            (
                "class_phases".into(),
                self.class_phases.as_slice().to_json(),
            ),
            (
                "exemplars".into(),
                Json::Object(vec![
                    ("schema".into(), Json::Str(EXEMPLAR_SCHEMA.into())),
                    ("per_shard".into(), Json::Int(EXEMPLARS_PER_SHARD as i64)),
                    ("windows".into(), self.exemplars.as_slice().to_json()),
                ]),
            ),
            ("slo".into(), self.slo.to_json()),
        ])
    }
}

/// Builds a [`WindowReport`] for window `epoch` of `slabs`.
fn window_report(
    slabs: &QuerySlabs,
    epoch: u64,
    ordinal: u64,
    start_ms: f64,
    dur_ms: f64,
) -> WindowReport {
    let all = slabs.window_summary(epoch, None, None);
    let kinds = QueryKind::ALL
        .iter()
        .filter_map(|&k| {
            let s = slabs.window_summary(epoch, Some(k), None);
            (s.count > 0).then(|| CellReport::from_summary(k.name(), &s))
        })
        .collect();
    let classes = DegreeClass::ALL
        .iter()
        .filter_map(|&c| {
            let s = slabs.window_summary(epoch, None, Some(c));
            (s.count > 0).then(|| CellReport::from_summary(c.name(), &s))
        })
        .collect();
    let phases = QueryPhase::ALL
        .iter()
        .filter_map(|&p| {
            let s = slabs.window_phase_summary(epoch, p, None, None);
            (s.count > 0).then(|| CellReport::from_summary(p.name(), &s))
        })
        .collect();
    WindowReport {
        window: ordinal,
        start_ms,
        dur_ms,
        requests: all.count,
        qps: if dur_ms > 0.0 {
            all.count as f64 * 1_000.0 / dur_ms
        } else {
            0.0
        },
        p50_ns: all.p50,
        p95_ns: all.p95,
        p99_ns: all.p99,
        kinds,
        classes,
        phases,
    }
}

/// Runs the closed loop: builds the graph and packed CSR, drives it for
/// `opts.duration_ms`, and returns the report. Deterministic in the query
/// *sequence* per client (seeded RNG); the measured latencies obviously are
/// not.
#[must_use]
pub fn run(opts: &DriverOptions) -> DriverReport {
    let (graph_name, edges) = build_graph(opts);
    let csr = CsrBuilder::new().build(&edges);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
    let n = csr.num_nodes();

    // Degree-descending rank table: rank r = the (r+1)-th highest-degree
    // node (ties broken by node id for determinism). Zipf rank 1 → ranks[0].
    let mut ranks: Vec<NodeId> = (0..n as NodeId).collect();
    ranks.sort_by_key(|&u| (std::cmp::Reverse(csr.degree(u)), u));
    let zipf = Zipf::new(n, opts.zipf_s);
    // Split searches (Algorithm 8) target the hottest rows — that is the
    // query the paper splits across processors precisely because hub rows
    // are long.
    let hub_pool = ranks.len().min(HUB_ROWS as usize);
    let total_weight: u32 = opts.mix.iter().sum();

    // Keep at most the global facade's retention so driver windows and the
    // obs-side `query.win.*` trace series stay in step.
    let slabs = QuerySlabs::new(opts.clients, 4);
    let stop = AtomicBool::new(false);
    let run_start = Instant::now();
    let windows_target = opts.duration_ms.div_ceil(opts.window_ms);
    let mut windows: Vec<WindowReport> = Vec::new();

    let mut exemplars: Vec<WindowExemplars> = Vec::new();

    std::thread::scope(|scope| {
        for client in 0..opts.clients {
            let (slabs, stop, packed, ranks, zipf) = (&slabs, &stop, &packed, &ranks, &zipf);
            let run_start = &run_start;
            let opts = opts.clone();
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(
                    opts.seed ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                // Width-1 install: the shim runs width-1 pools inline on
                // this thread, so length-1 batches cost no thread spawn.
                with_processors(1, || {
                    while !stop.load(Relaxed) {
                        // Phase checkpoint 1: the request exists from here
                        // (selection models the enqueue-side work a data
                        // plane will do before dispatching to a worker).
                        let queued = Instant::now();
                        let mut pick = rng.gen_range(0..total_weight);
                        let kind = MIX_KINDS
                            .iter()
                            .zip(opts.mix)
                            .find_map(|(&k, w)| {
                                if pick < w {
                                    Some(k)
                                } else {
                                    pick -= w;
                                    None
                                }
                            })
                            .unwrap_or(QueryKind::Neighbors);
                        let u = match kind {
                            QueryKind::SplitSearch => ranks[rng.gen_range(0..hub_pool)],
                            _ => ranks[zipf.sample_index(&mut rng)],
                        };
                        let deg = packed.degree(u);
                        // Phase checkpoint 2: dispatch — the query call
                        // starts now; queued→dispatched is queue-wait.
                        let dispatched = Instant::now();
                        match kind {
                            QueryKind::Neighbors => {
                                std::hint::black_box(neighbors_batch(packed, &[u], 1));
                            }
                            QueryKind::EdgeScan => {
                                let v = rng.gen_range(0..n as NodeId);
                                std::hint::black_box(edges_exist_batch(packed, &[(u, v)], 1));
                            }
                            QueryKind::EdgeBinary => {
                                let v = rng.gen_range(0..n as NodeId);
                                std::hint::black_box(edges_exist_batch_binary(
                                    packed,
                                    &[(u, v)],
                                    1,
                                ));
                            }
                            QueryKind::SplitSearch | QueryKind::Traversal => {
                                let v = rng.gen_range(0..n as NodeId);
                                std::hint::black_box(edge_exists_split(packed, u, v, 1));
                            }
                        }
                        // Phase checkpoints 3 and 4: the call returned;
                        // replied closes the request (result teardown and
                        // any reply-side bookkeeping land in the reply
                        // phase once the data plane serializes responses).
                        let executed = Instant::now();
                        let replied = Instant::now();
                        let at = |t: Instant| t.duration_since(*run_start).as_nanos() as u64;
                        let ns = PhaseNanos::from_checkpoints(
                            at(queued),
                            at(dispatched),
                            at(executed),
                            at(replied),
                        );
                        slabs.record_query(
                            client,
                            Exemplar {
                                kind,
                                class: DegreeClass::classify(deg),
                                source: u64::from(u),
                                ns,
                            },
                        );
                    }
                });
            });
        }

        // Reporter: the single rotator for both the driver slabs and (when
        // compiled in) the process-global serving slabs, so trace windows
        // line up with report windows.
        let mut prev_ms = 0.0_f64;
        for ordinal in 0..windows_target {
            let deadline = (ordinal + 1) * opts.window_ms;
            let now_ms = run_start.elapsed().as_secs_f64() * 1_000.0;
            if (deadline as f64) > now_ms {
                std::thread::sleep(Duration::from_millis(deadline - now_ms as u64));
            }
            let completed = slabs.rotate();
            parcsr_obs::serve::rotate_window();
            let exs = slabs.completed_exemplars();
            if !exs.is_empty() {
                exemplars.push(WindowExemplars {
                    window: ordinal,
                    exemplars: exs,
                });
            }
            let now_ms = run_start.elapsed().as_secs_f64() * 1_000.0;
            windows.push(window_report(
                &slabs,
                completed,
                ordinal,
                prev_ms,
                now_ms - prev_ms,
            ));
            prev_ms = now_ms;
        }
        stop.store(true, Relaxed);
    });

    // Clients have joined; anything recorded after the last rotation forms
    // a short tail window (kept only if it saw traffic).
    let elapsed_ms = run_start.elapsed().as_secs_f64() * 1_000.0;
    let tail_epoch = slabs.rotate();
    parcsr_obs::serve::rotate_window();
    let tail_exs = slabs.completed_exemplars();
    if !tail_exs.is_empty() {
        exemplars.push(WindowExemplars {
            window: windows.len() as u64,
            exemplars: tail_exs,
        });
    }
    let last_rotate_ms = windows.last().map_or(0.0, |w| w.start_ms + w.dur_ms);
    let tail = window_report(
        &slabs,
        tail_epoch,
        windows.len() as u64,
        last_rotate_ms,
        elapsed_ms - last_rotate_ms,
    );
    if tail.requests > 0 {
        windows.push(tail);
    }

    let all = slabs.overall_summary(None, None);
    let overall_kinds = QueryKind::ALL
        .iter()
        .filter_map(|&k| {
            let s = slabs.overall_summary(Some(k), None);
            (s.count > 0).then(|| CellReport::from_summary(k.name(), &s))
        })
        .collect();
    let overall_classes = DegreeClass::ALL
        .iter()
        .filter_map(|&c| {
            let s = slabs.overall_summary(None, Some(c));
            (s.count > 0).then(|| CellReport::from_summary(c.name(), &s))
        })
        .collect();
    let overall_phases = QueryPhase::ALL
        .iter()
        .filter_map(|&p| {
            let s = slabs.overall_phase_summary(p, None, None);
            (s.count > 0).then(|| CellReport::from_summary(p.name(), &s))
        })
        .collect();
    let class_phases = DegreeClass::ALL
        .iter()
        .filter_map(|&c| {
            let phases: Vec<CellReport> = QueryPhase::ALL
                .iter()
                .filter_map(|&p| {
                    let s = slabs.overall_phase_summary(p, None, Some(c));
                    (s.count > 0).then(|| CellReport::from_summary(p.name(), &s))
                })
                .collect();
            (!phases.is_empty()).then_some(ClassPhases {
                class: c.name(),
                phases,
            })
        })
        .collect();
    let qps = if elapsed_ms > 0.0 {
        all.count as f64 * 1_000.0 / elapsed_ms
    } else {
        0.0
    };
    let overall = WindowReport {
        window: 0,
        start_ms: 0.0,
        dur_ms: elapsed_ms,
        requests: all.count,
        qps,
        p50_ns: all.p50,
        p95_ns: all.p95,
        p99_ns: all.p99,
        kinds: overall_kinds,
        classes: overall_classes,
        phases: overall_phases,
    };
    let met = (opts.p99_ns.is_some() || opts.min_qps.is_some())
        .then(|| opts.p99_ns.is_none_or(|t| all.p99 <= t) && opts.min_qps.is_none_or(|t| qps >= t));
    DriverReport {
        graph: graph_name,
        nodes: n,
        edges: csr.num_edges(),
        clients: opts.clients,
        mix: opts.mix,
        zipf_s: opts.zipf_s,
        seed: opts.seed,
        elapsed_ms,
        windows,
        overall,
        class_phases,
        exemplars,
        slo: SloReport {
            target_p99_ns: opts.p99_ns,
            target_min_qps: opts.min_qps,
            achieved_p99_ns: all.p99,
            achieved_qps: qps,
            met,
        },
    }
}

/// Renders the human window table (one line per window, then the lifetime
/// rollup, per-kind/per-class rollups, and the SLO verdict when targets
/// were set).
#[must_use]
pub fn render_table(report: &DriverReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "closed loop: {} ({} nodes / {} edges), {} clients, mix {:?}, zipf_s {}",
        report.graph, report.nodes, report.edges, report.clients, report.mix, report.zipf_s
    );
    let _ = writeln!(
        out,
        "| window | span (ms) | requests | qps | p50 (µs) | p95 (µs) | p99 (µs) |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|---:|");
    let us = |ns: u64| ns as f64 / 1_000.0;
    for w in &report.windows {
        let _ = writeln!(
            out,
            "| {} | {:.0}–{:.0} | {} | {:.0} | {:.1} | {:.1} | {:.1} |",
            w.window,
            w.start_ms,
            w.start_ms + w.dur_ms,
            w.requests,
            w.qps,
            us(w.p50_ns),
            us(w.p95_ns),
            us(w.p99_ns),
        );
    }
    let o = &report.overall;
    let _ = writeln!(
        out,
        "overall: {} requests in {:.0} ms — {:.0} q/s, p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs",
        o.requests,
        report.elapsed_ms,
        o.qps,
        us(o.p50_ns),
        us(o.p95_ns),
        us(o.p99_ns),
    );
    for cell in o.kinds.iter().chain(&o.classes) {
        let _ = writeln!(
            out,
            "  {:>11}: {:>8} q, p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs, max {:.1} µs",
            cell.name,
            cell.count,
            us(cell.p50_ns),
            us(cell.p95_ns),
            us(cell.p99_ns),
            us(cell.max_ns),
        );
    }
    let phase_total: u64 = o.phases.iter().map(|p| p.sum_ns).sum();
    for cell in &o.phases {
        let share = if phase_total > 0 {
            cell.sum_ns as f64 * 100.0 / phase_total as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  phase {:>5}: {:>4.1}% of time, p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs",
            cell.name,
            share,
            us(cell.p50_ns),
            us(cell.p95_ns),
            us(cell.p99_ns),
        );
    }
    if let Some(slowest) = report
        .exemplars
        .iter()
        .flat_map(|w| &w.exemplars)
        .max_by_key(|e| e.ns.total_ns)
    {
        let _ = writeln!(
            out,
            "slowest query: {} {} source {} — total {:.1} µs (queue {:.1}, exec {:.1}, reply {:.1})",
            slowest.kind.name(),
            slowest.class.name(),
            slowest.source,
            us(slowest.ns.total_ns),
            us(slowest.ns.queue_ns),
            us(slowest.ns.exec_ns),
            us(slowest.ns.reply_ns),
        );
    }
    let slo = &report.slo;
    if let Some(met) = slo.met {
        let _ = writeln!(
            out,
            "slo: {} (p99 {:.1} µs vs target {}, qps {:.0} vs floor {})",
            if met { "MET" } else { "MISSED" },
            us(slo.achieved_p99_ns),
            slo.target_p99_ns
                .map_or("-".into(), |t| format!("{:.1} µs", us(t))),
            slo.achieved_qps,
            slo.target_min_qps.map_or("-".into(), |t| format!("{t:.0}")),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<DriverOptions, String> {
        DriverOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.graph, GraphKind::Hub);
        assert_eq!(o.clients, 4);
        assert_eq!(o.mix, [45, 25, 20, 10]);
        assert_eq!(o.window_ms, 250);
        assert_eq!(o.p99_ns, None);
        assert_eq!(o.min_qps, None);
    }

    #[test]
    fn parses_the_full_flag_set() {
        let o = parse(&[
            "--graph",
            "web",
            "--scale",
            "0.1",
            "--clients",
            "8",
            "--duration-ms",
            "500",
            "--window-ms",
            "100",
            "--mix",
            "1, 2,3,4",
            "--zipf-s",
            "0.8",
            "--seed",
            "7",
            "--json",
            "--p99-ns",
            "90000",
            "--min-qps",
            "1000.5",
            "--admin-port",
            "9184",
        ])
        .unwrap();
        assert_eq!(o.graph, GraphKind::Web);
        assert_eq!(o.scale, 0.1);
        assert_eq!(o.clients, 8);
        assert_eq!(o.duration_ms, 500);
        assert_eq!(o.window_ms, 100);
        assert_eq!(o.mix, [1, 2, 3, 4]);
        assert_eq!(o.zipf_s, 0.8);
        assert_eq!(o.seed, 7);
        assert!(o.json);
        assert_eq!(o.p99_ns, Some(90_000));
        assert_eq!(o.min_qps, Some(1000.5));
        assert_eq!(o.admin_port, Some(9184));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&["--graph", "nope"]).is_err());
        assert!(parse(&["--clients", "0"]).is_err());
        assert!(parse(&["--duration-ms", "0"]).is_err());
        assert!(parse(&["--window-ms", "0"]).is_err());
        assert!(parse(&["--mix", "1,2,3"]).is_err());
        assert!(parse(&["--mix", "0,0,0,0"]).is_err());
        assert!(parse(&["--zipf-s", "-1"]).is_err());
        assert!(parse(&["--min-qps", "nan"]).is_err());
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--p99-ns"]).is_err());
        assert!(parse(&["--admin-port", "notaport"]).is_err());
        assert!(parse(&["--admin-port", "70000"]).is_err());
    }

    #[test]
    fn help_is_the_error_payload() {
        assert_eq!(parse(&["--help"]).unwrap_err(), HELP);
    }

    #[test]
    fn hub_graph_scales_and_keeps_the_hub_block() {
        let g = hub_graph(0.01);
        assert_eq!(g.num_nodes(), 2_000);
        // 2000*5 ordinary + 64*160 hub edges.
        assert_eq!(g.num_edges(), 2_000 * 5 + 64 * 160);
        // Hub rows dominate: node 0 has at least its planted fan-out.
        let hub_edges = g.edges().iter().filter(|&&(u, _)| u < 64).count();
        assert!(hub_edges >= 64 * 160);
    }

    #[test]
    fn smoke_run_reports_windows_and_parses_back() {
        let opts = DriverOptions {
            scale: 0.01,
            clients: 2,
            duration_ms: 220,
            window_ms: 60,
            p99_ns: Some(u64::MAX),
            min_qps: Some(0.0),
            ..DriverOptions::default()
        };
        let report = run(&opts);
        assert!(
            report.windows.len() >= 4,
            "windows: {}",
            report.windows.len()
        );
        assert!(report.overall.requests > 0);
        // Window ordinals are dense and every full window saw traffic (a
        // 60 ms window on a 2k-node graph answers thousands of queries).
        for (i, w) in report.windows.iter().enumerate() {
            assert_eq!(w.window, i as u64);
        }
        assert!(report.windows[0].requests > 0);
        // Lifetime rollup equals the sum of the windows up to boundary
        // smear: a client mid-record across a rotation may land its sample
        // in a completed slot after the reporter read it (at most one
        // in-flight record per client per rotation, per the serve-module
        // concurrency contract), so the window sum may trail slightly.
        let sum: u64 = report.windows.iter().map(|w| w.requests).sum();
        assert!(sum <= report.overall.requests);
        let smear_bound = opts.clients as u64 * (report.windows.len() as u64 + 1);
        assert!(
            report.overall.requests - sum <= smear_bound,
            "lost {} records to rotation smear (bound {smear_bound})",
            report.overall.requests - sum
        );
        // Trivial SLO targets are met and echoed.
        assert_eq!(report.slo.met, Some(true));
        // Phase rollups: the three phases partition each request exactly,
        // so their total time equals the end-to-end total and queue/exec
        // are both represented.
        let phase_names: Vec<&str> = report.overall.phases.iter().map(|p| p.name).collect();
        assert!(phase_names.contains(&"queue"));
        assert!(phase_names.contains(&"exec"));
        let phase_sum: u64 = report.overall.phases.iter().map(|p| p.sum_ns).sum();
        let e2e_sum: u64 = report.overall.classes.iter().map(|c| c.sum_ns).sum();
        assert_eq!(
            phase_sum, e2e_sum,
            "phase sums must partition the end-to-end total exactly"
        );
        let all = &report.overall;
        // exec dominates an inline driver; queue exists but is small.
        let exec = report
            .overall
            .phases
            .iter()
            .find(|p| p.name == "exec")
            .unwrap();
        assert!(exec.count == all.requests);
        // Per-class phase decomposition covers every class that saw traffic.
        assert_eq!(report.class_phases.len(), report.overall.classes.len());
        // Exemplars: every rotated window that saw traffic kept its slowest
        // requests, each with an exact phase partition.
        assert!(!report.exemplars.is_empty());
        for we in &report.exemplars {
            assert!(!we.exemplars.is_empty());
            for e in &we.exemplars {
                assert_eq!(
                    e.ns.queue_ns + e.ns.exec_ns + e.ns.reply_ns,
                    e.ns.total_ns,
                    "exemplar phases must partition the end-to-end time"
                );
            }
            // Slowest-first ordering.
            for pair in we.exemplars.windows(2) {
                assert!(pair[0].ns.total_ns >= pair[1].ns.total_ns);
            }
        }
        // JSON round-trips and carries the schema tags.
        let parsed = Json::parse(&report.to_json().pretty()).expect("valid JSON");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA),);
        let windows = parsed.get("windows").unwrap().as_array().unwrap();
        assert_eq!(windows.len(), report.windows.len());
        assert!(windows[0].get("kinds").unwrap().as_array().unwrap().len() >= 2);
        assert!(!windows[0]
            .get("phases")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        let ex = parsed.get("exemplars").unwrap();
        assert_eq!(
            ex.get("schema").and_then(Json::as_str),
            Some(EXEMPLAR_SCHEMA)
        );
        assert!(!ex.get("windows").unwrap().as_array().unwrap().is_empty());
        assert!(!parsed
            .get("class_phases")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        // The human table renders every window plus the verdict line.
        let table = render_table(&report);
        assert!(table.contains("overall:"));
        assert!(table.contains("phase"));
        assert!(table.contains("slowest query:"));
        assert!(table.contains("slo: MET"));
    }
}
