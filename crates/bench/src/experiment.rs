//! The Table II / Figure 6 / Figure 7 experiment: construct the bit-packed
//! CSR for every dataset at every processor count, timing construction.
//!
//! Methodology notes (mirroring the paper where it is explicit and standard
//! practice where it is not):
//!
//! * Construction is timed from the **time-sorted edge list** — Table II's
//!   single-processor LiveJournal time (164 ms for 69M edges) is only
//!   reachable if the sort is outside the timed region, matching the paper's
//!   "we assume that the datasets are sorted" setup.
//! * The timed region covers the parallel degree computation, the prefix-sum
//!   offset construction and the column fill, plus the Algorithm 4 bit
//!   packing of both arrays — i.e. "time to compress the graph to CSR".
//! * Each cell runs `reps` times; the minimum is reported (wall-clock noise
//!   is one-sided).

use std::time::Instant;

use parcsr::{with_processors, BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_graph::{paper_datasets, DatasetProfile, EdgeList};
use parcsr_obs::export::{aggregate_stages, StageAgg};
use parcsr_obs::SpanRecord;

use crate::options::Options;

/// Parallel-efficiency statistics of one top-level stage of the reported
/// rep, computed by [`parcsr_obs::analyze`] from the rep's spans when
/// `--imbalance` is set.
#[derive(Debug, Clone, PartialEq)]
pub struct StageImbalance {
    /// Stage name (matches the `stages` entry it annotates).
    pub name: String,
    /// Worker utilization, `Σ busy / (wall × lanes)` in `(0, 1]`.
    pub utilization: f64,
    /// Coefficient of variation of per-chunk durations; `None` when the
    /// stage recorded no chunk spans.
    pub cv: Option<f64>,
    /// Share of total work on the slowest lane (`1/lanes` = balanced).
    pub critical_path_ratio: f64,
}

/// One processor-count measurement.
#[derive(Debug, Clone)]
pub struct ProcessorSample {
    /// Processor count (chunks and pool width).
    pub processors: usize,
    /// Construction time, milliseconds (min over reps).
    pub time_ms: f64,
    /// Speed-up vs. the 1-processor row, percent: `(t1 - tp) / t1 · 100`.
    pub speedup_percent: f64,
    /// The paper's published time for this cell, if any.
    pub paper_time_ms: Option<f64>,
    /// The paper's published speed-up for this cell, if any.
    pub paper_speedup_percent: Option<f64>,
    /// Per-stage wall-clock breakdown of the rep that produced `time_ms`
    /// (top-level pipeline spans: degree, scan, scatter, pack). Empty unless
    /// obs recording is compiled in and switched on.
    pub stages: Vec<StageAgg>,
    /// Peak live heap bytes over the reported rep's top-level stages. `None`
    /// unless memory accounting ran (`--mem-metrics` on an obs build).
    pub mem_peak_bytes: Option<u64>,
    /// Per-stage imbalance statistics of the reported rep. Empty unless
    /// `--imbalance` was set on an obs build.
    pub imbalance: Vec<StageImbalance>,
}

/// One dataset's full Table II row group.
#[derive(Debug, Clone)]
pub struct DatasetResult {
    /// Dataset name.
    pub name: &'static str,
    /// Whether the real SNAP file was used (vs. the synthetic stand-in).
    pub real_data: bool,
    /// Node count of the measured graph.
    pub nodes: usize,
    /// Edge count of the measured graph.
    pub edges: usize,
    /// Edge list size in SNAP text form, bytes (the paper's 4th column).
    pub edgelist_text_bytes: usize,
    /// Edge list size in binary form (8 B/edge), bytes.
    pub edgelist_binary_bytes: usize,
    /// Bit-packed CSR size, bytes (the paper's 5th column).
    pub csr_packed_bytes: usize,
    /// Uncompressed CSR size, bytes (context the paper omits).
    pub csr_raw_bytes: usize,
    /// Per-processor-count samples, in sweep order.
    pub samples: Vec<ProcessorSample>,
}

/// Runs the full experiment for the given options.
pub fn run_experiment(opts: &Options) -> Vec<DatasetResult> {
    run_experiment_traced(opts).0
}

/// Runs the full experiment and also returns the spans of every reported
/// (minimum-time) rep — the input for the Chrome trace writer. The span list
/// is empty unless obs recording is compiled in and switched on.
pub fn run_experiment_traced(opts: &Options) -> (Vec<DatasetResult>, Vec<SpanRecord>) {
    let mut trace = Vec::new();
    let results = paper_datasets()
        .into_iter()
        .filter(|d| {
            opts.only
                .as_deref()
                .is_none_or(|needle| d.name.to_lowercase().contains(&needle.to_lowercase()))
        })
        .map(|profile| run_dataset(&profile, opts, &mut trace))
        .collect();
    (results, trace)
}

fn load_graph(profile: &DatasetProfile, opts: &Options) -> (EdgeList, bool) {
    if let Some(dir) = &opts.data_dir {
        let path = std::path::Path::new(dir).join(format!("{}.txt", profile.name));
        if path.exists() {
            match parcsr_graph::io::read_edge_list_file(&path) {
                Ok(g) => return (g, true),
                Err(e) => eprintln!(
                    "warning: failed to read {}: {e}; falling back to synthetic stand-in",
                    path.display()
                ),
            }
        }
    }
    (profile.synthesize(opts.scale, opts.seed), false)
}

/// Per-stage imbalance statistics of one rep's spans.
fn stage_imbalance(spans: &[SpanRecord]) -> Vec<StageImbalance> {
    parcsr_obs::analyze::analyze_records(spans)
        .stages
        .iter()
        .map(|s| StageImbalance {
            name: s.name.clone(),
            utilization: s.utilization,
            cv: s.chunks.as_ref().map(|c| c.cv),
            critical_path_ratio: s.critical_path_ratio,
        })
        .collect()
}

fn run_dataset(
    profile: &DatasetProfile,
    opts: &Options,
    trace: &mut Vec<SpanRecord>,
) -> DatasetResult {
    let (graph, real_data) = load_graph(profile, opts);
    let sorted = graph.sorted_by_source();

    // Sizes (independent of processor count; packed once at default width).
    let reference_csr = CsrBuilder::new().build_from_sorted(&sorted).0;
    let packed = BitPackedCsr::from_csr(&reference_csr, PackedCsrMode::Gap, 4);
    // Discard the sizing pre-pass spans: the trace carries timed reps only.
    let _ = parcsr_obs::drain();

    let mut samples = Vec::with_capacity(opts.processors.len());
    let mut t1 = None;
    for &p in &opts.processors {
        let (time_ms, best_spans) = with_processors(p, || {
            let builder = CsrBuilder::new()
                .processors(p)
                .chunk_policy(opts.chunk_policy);
            let mut best = f64::INFINITY;
            let mut best_spans = Vec::new();
            for _ in 0..opts.reps {
                let t = Instant::now();
                let (csr, _) = builder.build_from_sorted(&sorted);
                let packed = BitPackedCsr::from_csr_with_chunking(
                    &csr,
                    PackedCsrMode::Gap,
                    p,
                    opts.chunk_policy,
                );
                let elapsed = t.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(&packed);
                // Draining per rep keeps only this rep's spans, so the
                // reported breakdown belongs to the reported (minimum) time.
                let spans = parcsr_obs::drain();
                if elapsed < best {
                    best = elapsed;
                    best_spans = spans;
                }
            }
            (best, best_spans)
        });
        let t1_ms = *t1.get_or_insert(time_ms);
        let stages = aggregate_stages(&best_spans, true);
        let mem_peak_bytes = stages
            .iter()
            .map(|s| s.mem_peak_bytes)
            .max()
            .filter(|&m| m > 0);
        let imbalance = if opts.imbalance {
            stage_imbalance(&best_spans)
        } else {
            Vec::new()
        };
        trace.extend(best_spans);
        samples.push(ProcessorSample {
            processors: p,
            time_ms,
            speedup_percent: (t1_ms - time_ms) / t1_ms * 100.0,
            paper_time_ms: profile.paper_time_at(p),
            paper_speedup_percent: profile.paper_speedup_percent(p),
            stages,
            mem_peak_bytes,
            imbalance,
        });
    }

    DatasetResult {
        name: profile.name,
        real_data,
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        edgelist_text_bytes: graph.text_bytes(),
        edgelist_binary_bytes: graph.binary_bytes(),
        csr_packed_bytes: packed.packed_bytes(),
        csr_raw_bytes: reference_csr.heap_bytes(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> Options {
        Options {
            scale: 0.002,
            processors: vec![1, 2],
            reps: 1,
            seed: 7,
            data_dir: None,
            only: Some("WebNotreDame".into()),
            json: false,
            trace: None,
            metrics: false,
            trace_sample: None,
            mem_metrics: false,
            mem_sample: None,
            imbalance: false,
            chunk_policy: parcsr::ChunkPolicy::default(),
        }
    }

    #[test]
    fn experiment_runs_end_to_end() {
        let results = run_experiment(&tiny_options());
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.name, "WebNotreDame");
        assert!(!r.real_data);
        assert_eq!(r.samples.len(), 2);
        assert_eq!(r.samples[0].processors, 1);
        assert_eq!(r.samples[0].speedup_percent, 0.0);
        assert!(r.samples.iter().all(|s| s.time_ms > 0.0));
        assert!(r.csr_packed_bytes > 0);
        assert!(r.csr_packed_bytes < r.edgelist_binary_bytes);
    }

    #[test]
    fn only_filter_is_case_insensitive() {
        let mut o = tiny_options();
        o.only = Some("pokec".into());
        o.scale = 0.001;
        let results = run_experiment(&o);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "Pokec");
    }

    #[test]
    fn paper_reference_columns_attach() {
        let results = run_experiment(&tiny_options());
        let s = &results[0].samples[0];
        assert_eq!(s.paper_time_ms, Some(7.13));
    }

    // Gated off under the obs feature: the traced test flips the global
    // runtime switch, and the two would race in a parallel test run.
    #[cfg(not(feature = "obs"))]
    #[test]
    fn stages_are_empty_when_recording_is_off() {
        // Default build: the breakdown must not materialize.
        let results = run_experiment(&tiny_options());
        assert!(results[0].samples.iter().all(|s| s.stages.is_empty()));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn traced_experiment_reports_pipeline_stages() {
        let mut opts = tiny_options();
        opts.imbalance = true;
        parcsr_obs::set_enabled(true);
        let (results, spans) = run_experiment_traced(&opts);
        parcsr_obs::set_enabled(false);
        assert!(!spans.is_empty());
        for sample in &results[0].samples {
            // The top-level coordinator spans are recorded on this thread,
            // so they cannot be lost to (or polluted by) concurrent tests.
            let names: Vec<&str> = sample.stages.iter().map(|s| s.name).collect();
            for want in ["degree", "scan", "scatter", "pack"] {
                assert!(names.contains(&want), "missing {want} in {names:?}");
            }
            // --imbalance annotates every recorded stage with positive
            // utilization and a sane critical-path share.
            assert!(!sample.imbalance.is_empty());
            for imb in &sample.imbalance {
                assert!(
                    imb.utilization > 0.0 && imb.utilization <= 1.0,
                    "{}: {}",
                    imb.name,
                    imb.utilization
                );
                assert!(imb.critical_path_ratio <= 1.0 + 1e-9, "{}", imb.name);
            }
            let with_chunks = sample.imbalance.iter().filter(|i| i.cv.is_some()).count();
            assert!(with_chunks > 0, "no stage reported chunk statistics");
        }
    }

    #[test]
    fn real_data_path_falls_back_when_missing() {
        let mut o = tiny_options();
        o.data_dir = Some("/nonexistent-dir".into());
        let results = run_experiment(&o);
        assert!(!results[0].real_data);
    }
}
