//! Minimal JSON emission for bench results.
//!
//! The workspace builds without crates.io access, so instead of `serde` +
//! `serde_json` the bench harness hand-rolls the one serialization shape it
//! needs: pretty-printed JSON of the experiment result tree. The output is
//! byte-compatible with what `serde_json::to_string_pretty` produced for the
//! same derive layout (2-space indent, field order = declaration order), so
//! downstream tooling that parses `BENCH_*.json` files keeps working.

use crate::experiment::{DatasetResult, ProcessorSample};

/// A JSON value tree.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (emitted without a decimal point).
    Int(i64),
    /// Float (emitted via Rust's shortest-roundtrip formatting).
    Float(f64),
    /// String (escaped on emission).
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Pretty-prints with 2-space indentation and a trailing newline-free
    /// final line, matching `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // serde_json always keeps a decimal point on floats.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves as a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for ProcessorSample {
    fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Float);
        Json::Object(vec![
            ("processors".into(), Json::Int(self.processors as i64)),
            ("time_ms".into(), Json::Float(self.time_ms)),
            ("speedup_percent".into(), Json::Float(self.speedup_percent)),
            ("paper_time_ms".into(), opt(self.paper_time_ms)),
            (
                "paper_speedup_percent".into(),
                opt(self.paper_speedup_percent),
            ),
        ])
    }
}

impl ToJson for DatasetResult {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.to_string())),
            ("real_data".into(), Json::Bool(self.real_data)),
            ("nodes".into(), Json::Int(self.nodes as i64)),
            ("edges".into(), Json::Int(self.edges as i64)),
            (
                "edgelist_text_bytes".into(),
                Json::Int(self.edgelist_text_bytes as i64),
            ),
            (
                "edgelist_binary_bytes".into(),
                Json::Int(self.edgelist_binary_bytes as i64),
            ),
            (
                "csr_packed_bytes".into(),
                Json::Int(self.csr_packed_bytes as i64),
            ),
            ("csr_raw_bytes".into(), Json::Int(self.csr_raw_bytes as i64)),
            (
                "samples".into(),
                Json::Array(self.samples.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Pretty-prints experiment results — the drop-in replacement for
/// `serde_json::to_string_pretty(&results)` in the bench binaries.
pub fn results_to_json_pretty(results: &[DatasetResult]) -> String {
    results.to_json().pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Int(-3).pretty(), "-3");
        assert_eq!(Json::Float(1.5).pretty(), "1.5");
        assert_eq!(Json::Float(2.0).pretty(), "2.0");
        assert_eq!(Json::Str("a\"b\\c\nd".into()).pretty(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn pretty_layout_matches_serde_json_shape() {
        let v = Json::Object(vec![
            ("xs".into(), Json::Array(vec![Json::Int(1), Json::Int(2)])),
            ("empty".into(), Json::Array(vec![])),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn sample_round_trips_field_order() {
        let s = ProcessorSample {
            processors: 4,
            time_ms: 1.25,
            speedup_percent: 50.0,
            paper_time_ms: None,
            paper_speedup_percent: Some(61.0),
        };
        let text = s.to_json().pretty();
        let procs_at = text.find("processors").unwrap();
        let time_at = text.find("time_ms").unwrap();
        assert!(procs_at < time_at);
        assert!(text.contains("\"paper_time_ms\": null"));
        assert!(text.contains("\"paper_speedup_percent\": 61.0"));
    }
}
