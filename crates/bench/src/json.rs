//! Minimal JSON emission for bench results.
//!
//! The workspace builds without crates.io access, so instead of `serde` +
//! `serde_json` the harness serializes the one shape it needs: pretty-printed
//! JSON of the experiment result tree. The value type (and a parser) lives in
//! `parcsr_obs::json` — one hand-rolled JSON implementation serves both the
//! bench output and the Chrome trace exporter. The output is byte-compatible
//! with what `serde_json::to_string_pretty` produced for the same derive
//! layout (2-space indent, field order = declaration order), so downstream
//! tooling that parses `BENCH_*.json` files keeps working.

use parcsr_obs::export::StageAgg;

use crate::experiment::{DatasetResult, ProcessorSample, StageImbalance};

pub use parcsr_obs::json::Json;

/// Types that can render themselves as a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

impl ToJson for StageAgg {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.to_string())),
            ("calls".into(), Json::Int(self.calls as i64)),
            ("kept".into(), Json::Int(self.kept as i64)),
            ("total_ms".into(), Json::Float(self.total_ms)),
            ("workers".into(), Json::Int(self.workers as i64)),
            (
                "mem_peak_bytes".into(),
                Json::Int(self.mem_peak_bytes as i64),
            ),
        ])
    }
}

impl ToJson for StageImbalance {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("utilization".into(), Json::Float(self.utilization)),
            ("cv".into(), self.cv.map_or(Json::Null, Json::Float)),
            (
                "critical_path_ratio".into(),
                Json::Float(self.critical_path_ratio),
            ),
        ])
    }
}

impl ToJson for ProcessorSample {
    fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Float);
        // `--imbalance` annotates each stage entry in place, keyed by stage
        // name, so baseline-diff tooling keeps parsing the same tree shape.
        let stages = self
            .stages
            .iter()
            .map(|st| match st.to_json() {
                Json::Object(mut fields) => {
                    if let Some(imb) = self.imbalance.iter().find(|i| i.name == st.name) {
                        fields.push(("imbalance".into(), imb.to_json()));
                    }
                    Json::Object(fields)
                }
                other => other,
            })
            .collect();
        Json::Object(vec![
            ("processors".into(), Json::Int(self.processors as i64)),
            ("time_ms".into(), Json::Float(self.time_ms)),
            ("speedup_percent".into(), Json::Float(self.speedup_percent)),
            ("paper_time_ms".into(), opt(self.paper_time_ms)),
            (
                "paper_speedup_percent".into(),
                opt(self.paper_speedup_percent),
            ),
            ("stages".into(), Json::Array(stages)),
            (
                "mem".into(),
                self.mem_peak_bytes.map_or(Json::Null, |peak| {
                    Json::Object(vec![("peak_bytes".into(), Json::Int(peak as i64))])
                }),
            ),
        ])
    }
}

impl ToJson for DatasetResult {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.to_string())),
            ("real_data".into(), Json::Bool(self.real_data)),
            ("nodes".into(), Json::Int(self.nodes as i64)),
            ("edges".into(), Json::Int(self.edges as i64)),
            (
                "edgelist_text_bytes".into(),
                Json::Int(self.edgelist_text_bytes as i64),
            ),
            (
                "edgelist_binary_bytes".into(),
                Json::Int(self.edgelist_binary_bytes as i64),
            ),
            (
                "csr_packed_bytes".into(),
                Json::Int(self.csr_packed_bytes as i64),
            ),
            ("csr_raw_bytes".into(), Json::Int(self.csr_raw_bytes as i64)),
            (
                "samples".into(),
                Json::Array(self.samples.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

/// Pretty-prints experiment results — the drop-in replacement for
/// `serde_json::to_string_pretty(&results)` in the bench binaries.
pub fn results_to_json_pretty(results: &[DatasetResult]) -> String {
    results.to_json().pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_escaping() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Int(-3).pretty(), "-3");
        assert_eq!(Json::Float(1.5).pretty(), "1.5");
        assert_eq!(Json::Float(2.0).pretty(), "2.0");
        assert_eq!(Json::Str("a\"b\\c\nd".into()).pretty(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn pretty_layout_matches_serde_json_shape() {
        let v = Json::Object(vec![
            ("xs".into(), Json::Array(vec![Json::Int(1), Json::Int(2)])),
            ("empty".into(), Json::Array(vec![])),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn sample_round_trips_field_order() {
        let s = ProcessorSample {
            processors: 4,
            time_ms: 1.25,
            speedup_percent: 50.0,
            paper_time_ms: None,
            paper_speedup_percent: Some(61.0),
            stages: vec![StageAgg {
                name: "degree",
                calls: 1,
                kept: 1,
                total_ms: 0.7,
                workers: 1,
                mem_peak_bytes: 2048,
            }],
            mem_peak_bytes: Some(2048),
            imbalance: Vec::new(),
        };
        let text = s.to_json().pretty();
        let procs_at = text.find("processors").unwrap();
        let time_at = text.find("time_ms").unwrap();
        assert!(procs_at < time_at);
        assert!(text.contains("\"paper_time_ms\": null"));
        assert!(text.contains("\"paper_speedup_percent\": 61.0"));
        assert!(text.contains("\"stages\""));
        assert!(text.contains("\"name\": \"degree\""));
        assert!(text.contains("\"kept\": 1"));
        assert!(text.contains("\"mem_peak_bytes\": 2048"));
        assert!(text.contains("\"peak_bytes\": 2048"));
    }

    #[test]
    fn imbalance_annotates_its_stage_entry_by_name() {
        let stage = |name: &'static str| StageAgg {
            name,
            calls: 1,
            kept: 1,
            total_ms: 0.5,
            workers: 2,
            mem_peak_bytes: 0,
        };
        let s = ProcessorSample {
            processors: 2,
            time_ms: 1.0,
            speedup_percent: 0.0,
            paper_time_ms: None,
            paper_speedup_percent: None,
            stages: vec![stage("degree"), stage("scan")],
            mem_peak_bytes: None,
            imbalance: vec![StageImbalance {
                name: "degree".into(),
                utilization: 0.75,
                cv: Some(0.4),
                critical_path_ratio: 0.6,
            }],
        };
        let parsed = Json::parse(&s.to_json().pretty()).unwrap();
        let stages = parsed.get("stages").unwrap().as_array().unwrap();
        let imb = stages[0].get("imbalance").unwrap();
        assert_eq!(imb.get("utilization").unwrap().as_f64(), Some(0.75));
        assert_eq!(imb.get("cv").unwrap().as_f64(), Some(0.4));
        assert_eq!(imb.get("critical_path_ratio").unwrap().as_f64(), Some(0.6));
        // The stage without statistics stays untouched (no null noise).
        assert_eq!(stages[1].get("imbalance"), None);
    }

    #[test]
    fn emitted_results_parse_back() {
        let s = ProcessorSample {
            processors: 2,
            time_ms: 3.5,
            speedup_percent: 0.0,
            paper_time_ms: Some(7.13),
            paper_speedup_percent: None,
            stages: Vec::new(),
            mem_peak_bytes: None,
            imbalance: Vec::new(),
        };
        let parsed = Json::parse(&s.to_json().pretty()).unwrap();
        assert_eq!(parsed.get("processors").unwrap().as_i64(), Some(2));
        assert_eq!(parsed.get("time_ms").unwrap().as_f64(), Some(3.5));
        assert_eq!(parsed.get("stages").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(parsed.get("mem"), Some(&Json::Null));
    }
}
