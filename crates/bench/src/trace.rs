//! `--trace` / `--metrics` / `--trace-sample` / `--mem-metrics` /
//! `--mem-sample` / `--imbalance` wiring shared by the harness binaries.
//!
//! The flags are always parsed and compose in any order, but recording only
//! happens when the binary was built with the `obs` feature (which turns on
//! `parcsr-obs/enabled` and registers the counting allocator); without it
//! [`setup`] warns and the run proceeds uninstrumented.

use std::path::Path;

use parcsr_obs::SpanRecord;

use crate::options::Options;

/// The span sampling period a run will use: the `--trace-sample` flag wins,
/// then the `PARCSR_TRACE_SAMPLE` environment variable, then 1 (record
/// everything). Invalid env values are ignored.
#[must_use]
pub fn resolve_trace_sample(opts: &Options) -> u32 {
    opts.trace_sample
        .or_else(|| {
            std::env::var("PARCSR_TRACE_SAMPLE")
                .ok()
                .and_then(|s| s.trim().parse().ok())
        })
        .unwrap_or(1)
        .max(1)
}

/// The mid-span memory sampling period a run will use: the `--mem-sample`
/// flag wins, then the `PARCSR_MEM_SAMPLE` environment variable, then 0
/// (off). Invalid env values are ignored.
#[must_use]
pub fn resolve_mem_sample(opts: &Options) -> u64 {
    opts.mem_sample
        .or_else(|| {
            std::env::var("PARCSR_MEM_SAMPLE")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or(0)
}

/// Switches runtime span/metric/memory recording on when the options ask
/// for it and applies the sampling periods. Call once, before the measured
/// work.
pub fn setup(opts: &Options) {
    if opts.trace.is_none()
        && !opts.metrics
        && !opts.mem_metrics
        && !opts.imbalance
        && opts.mem_sample.is_none()
    {
        return;
    }
    if !parcsr_obs::compiled() {
        eprintln!(
            "warning: --trace/--metrics/--mem-metrics/--mem-sample/--imbalance need a build \
             with the obs feature (cargo run -p parcsr-bench --features obs ...); nothing \
             will be recorded"
        );
    }
    parcsr_obs::set_trace_sample(resolve_trace_sample(opts));
    // Intra-span peak sampling observes the live-byte counter, so it
    // implies memory accounting even without --mem-metrics.
    let mem_sample = resolve_mem_sample(opts);
    parcsr_obs::mem::set_sample_period(mem_sample);
    parcsr_obs::mem::set_enabled(opts.mem_metrics || mem_sample > 0);
    parcsr_obs::set_enabled(true);
}

/// Writes the Chrome trace file (spans plus latency/memory counter events)
/// and/or prints the metrics + memory summary, per the options. Call once,
/// after the measured work, with the collected spans. Exits non-zero if a
/// requested trace file cannot be written.
pub fn finish(opts: &Options, spans: &[SpanRecord]) {
    parcsr_obs::mem::publish_gauges();
    let metrics = parcsr_obs::metrics::snapshot();
    let mem = parcsr_obs::mem::snapshot();
    // Serving-telemetry windows (plus their phase decomposition and tail
    // exemplars), if any query-window rotation ran (the closed-loop
    // driver's reporter); all empty for the build-side binaries.
    let windows = parcsr_obs::serve::drain_window_log();
    let phases = parcsr_obs::serve::drain_phase_log();
    let exemplars = parcsr_obs::serve::drain_exemplar_log();
    if let Some(path) = &opts.trace {
        match parcsr_obs::export::write_chrome_trace(
            Path::new(path),
            spans,
            &metrics,
            mem,
            &windows,
            &phases,
            &exemplars,
        ) {
            Ok(()) => eprintln!("trace: wrote {} spans to {path}", spans.len()),
            Err(e) => {
                eprintln!("trace: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if opts.metrics || opts.mem_metrics {
        eprint!(
            "{}",
            parcsr_obs::export::summary_table(spans, &metrics, mem)
        );
    }
}
