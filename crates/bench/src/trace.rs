//! `--trace` / `--metrics` wiring shared by the harness binaries.
//!
//! The flags are always parsed, but recording only happens when the binary
//! was built with the `obs` feature (which turns on `parcsr-obs/enabled`);
//! without it [`setup`] warns and the run proceeds uninstrumented.

use std::path::Path;

use parcsr_obs::SpanRecord;

use crate::options::Options;

/// Switches runtime span/metric recording on when the options ask for it.
/// Call once, before the measured work.
pub fn setup(opts: &Options) {
    if opts.trace.is_none() && !opts.metrics {
        return;
    }
    if !parcsr_obs::compiled() {
        eprintln!(
            "warning: --trace/--metrics need a build with the obs feature \
             (cargo run -p parcsr-bench --features obs ...); nothing will be recorded"
        );
    }
    parcsr_obs::set_enabled(true);
}

/// Writes the Chrome trace file and/or prints the metrics summary, per the
/// options. Call once, after the measured work, with the collected spans.
/// Exits non-zero if a requested trace file cannot be written.
pub fn finish(opts: &Options, spans: &[SpanRecord]) {
    if let Some(path) = &opts.trace {
        match parcsr_obs::export::write_chrome_trace(Path::new(path), spans) {
            Ok(()) => eprintln!("trace: wrote {} spans to {path}", spans.len()),
            Err(e) => {
                eprintln!("trace: failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if opts.metrics {
        eprint!(
            "{}",
            parcsr_obs::export::summary_table(spans, &parcsr_obs::metrics::snapshot())
        );
    }
}
