//! Minimal CLI option parsing shared by the harness binaries (no external
//! argument-parsing dependency; the flags are few and stable).

use parcsr::ChunkPolicy;

/// Harness options.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Fraction of the published dataset sizes to synthesize (default
    /// 1/16). `1.0` reproduces Table II's full sizes.
    pub scale: f64,
    /// Processor counts to sweep. Defaults to the paper's {1, 4, 8, 16, 64}.
    pub processors: Vec<usize>,
    /// Timing repetitions per cell; the minimum is reported (standard
    /// practice for wall-clock microbenchmarks).
    pub reps: usize,
    /// Generator seed.
    pub seed: u64,
    /// Optional directory of real SNAP files (`LiveJournal.txt`, …); when
    /// set, files found there replace the synthetic stand-ins.
    pub data_dir: Option<String>,
    /// Restrict to datasets whose name contains this string.
    pub only: Option<String>,
    /// Emit results as JSON instead of a formatted table.
    pub json: bool,
    /// Write a Chrome trace-event JSON of the run to this path (requires
    /// the `obs` build feature to record anything).
    pub trace: Option<String>,
    /// Print the per-stage/metrics summary to stderr after the run
    /// (requires the `obs` build feature).
    pub metrics: bool,
    /// Span sampling period: record every Nth same-name span per thread
    /// (default: the `PARCSR_TRACE_SAMPLE` env var, else 1 = record all).
    pub trace_sample: Option<u32>,
    /// Enable memory accounting (live/peak heap bytes, per-stage peaks);
    /// requires the `obs` build feature, which registers the counting
    /// allocator.
    pub mem_metrics: bool,
    /// Mid-span memory sampling period: every Nth allocation updates the
    /// per-span high-water mark, so nested/worker spans report true
    /// intra-span peaks (default: the `PARCSR_MEM_SAMPLE` env var, else
    /// off). Implies memory accounting.
    pub mem_sample: Option<u64>,
    /// Append a per-stage `imbalance` object (worker utilization, chunk CV,
    /// critical-path ratio) to each `stages` entry of the JSON output;
    /// requires the `obs` build feature to measure anything.
    pub imbalance: bool,
    /// How build stages split rows into parallel chunks (default: edge
    /// weighted; `--chunk-policy rows` restores the historical row-count
    /// split).
    pub chunk_policy: ChunkPolicy,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 1.0 / 16.0,
            processors: vec![1, 4, 8, 16, 64],
            reps: 3,
            seed: 42,
            data_dir: None,
            only: None,
            json: false,
            trace: None,
            metrics: false,
            trace_sample: None,
            mem_metrics: false,
            mem_sample: None,
            imbalance: false,
            chunk_policy: ChunkPolicy::default(),
        }
    }
}

impl Options {
    /// Parses `--flag value` style arguments; returns an error message
    /// naming the offending flag on failure.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match flag.as_str() {
                "--scale" => {
                    opts.scale = value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?;
                    if !opts.scale.is_finite() || opts.scale <= 0.0 {
                        return Err("--scale must be positive".into());
                    }
                }
                "--procs" => {
                    opts.processors = value("--procs")?
                        .split(',')
                        .map(|s| s.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| format!("--procs: {e}"))?;
                    if opts.processors.is_empty() || opts.processors.contains(&0) {
                        return Err("--procs needs positive, comma-separated counts".into());
                    }
                }
                "--reps" => {
                    opts.reps = value("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?;
                    if opts.reps == 0 {
                        return Err("--reps must be at least 1".into());
                    }
                }
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--data" => opts.data_dir = Some(value("--data")?),
                "--only" => opts.only = Some(value("--only")?),
                "--full" => opts.scale = 1.0,
                "--json" => opts.json = true,
                "--trace" => opts.trace = Some(value("--trace")?),
                "--metrics" => opts.metrics = true,
                "--trace-sample" => {
                    let n: u32 = value("--trace-sample")?
                        .parse()
                        .map_err(|e| format!("--trace-sample: {e}"))?;
                    if n == 0 {
                        return Err("--trace-sample must be at least 1".into());
                    }
                    opts.trace_sample = Some(n);
                }
                "--mem-metrics" => opts.mem_metrics = true,
                "--mem-sample" => {
                    let n: u64 = value("--mem-sample")?
                        .parse()
                        .map_err(|e| format!("--mem-sample: {e}"))?;
                    if n == 0 {
                        return Err("--mem-sample must be at least 1".into());
                    }
                    opts.mem_sample = Some(n);
                }
                "--imbalance" => opts.imbalance = true,
                "--chunk-policy" => {
                    opts.chunk_policy = ChunkPolicy::parse(&value("--chunk-policy")?)
                        .map_err(|e| format!("--chunk-policy: {e}"))?;
                }
                "--help" | "-h" => {
                    return Err(HELP.to_string());
                }
                other => return Err(format!("unknown flag {other} (try --help)")),
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments, exiting with the message on error.
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(if msg == HELP { 0 } else { 2 });
            }
        }
    }
}

const HELP: &str = "\
Regenerates the paper's evaluation artifacts on profile-matched synthetic graphs.

Flags:
  --scale <f>     fraction of published dataset sizes (default 0.0625; 1.0 = full)
  --full          shorthand for --scale 1.0
  --procs <list>  comma-separated processor counts (default 1,4,8,16,64)
  --reps <n>      timing repetitions, min reported (default 3)
  --seed <n>      generator seed (default 42)
  --data <dir>    directory with real SNAP files (<Dataset>.txt) to use instead
  --only <name>   run only datasets whose name contains <name>
  --json          emit JSON
  --trace <file>  write a Chrome trace (chrome://tracing JSON) of the run
  --metrics       print the per-stage/metrics summary to stderr
  --trace-sample <n>  record every nth same-name span per thread
                  (default: $PARCSR_TRACE_SAMPLE, else 1 = record all)
  --mem-metrics   track live/peak heap bytes and per-stage memory peaks
  --mem-sample <n>  sample the live-heap high-water mark every nth allocation,
                  so nested/worker spans report intra-span peaks
                  (default: $PARCSR_MEM_SAMPLE, else off; implies accounting)
  --imbalance     append per-stage worker-utilization / chunk-imbalance stats
                  to the JSON output
                  (observability flags need a build with --features obs)
  --chunk-policy <rows|edges>  how build stages split rows into parallel
                  chunks (default edges: weight rows by degree so hubs
                  spread out; rows = historical near-equal row counts)";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.processors, [1, 4, 8, 16, 64]);
        assert!((o.scale - 0.0625).abs() < 1e-12);
        assert_eq!(o.reps, 3);
    }

    #[test]
    fn full_flag() {
        assert_eq!(parse(&["--full"]).unwrap().scale, 1.0);
    }

    #[test]
    fn procs_list() {
        let o = parse(&["--procs", "1,2, 8"]).unwrap();
        assert_eq!(o.processors, [1, 2, 8]);
    }

    #[test]
    fn rejects_zero_procs() {
        assert!(parse(&["--procs", "0,2"]).is_err());
        assert!(parse(&["--procs", ""]).is_err());
    }

    #[test]
    fn rejects_bad_scale() {
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
    }

    #[test]
    fn unknown_flag_is_error() {
        let e = parse(&["--nope"]).unwrap_err();
        assert!(e.contains("--nope"));
    }

    #[test]
    fn value_flags_require_values() {
        assert!(parse(&["--seed"]).is_err());
    }

    #[test]
    fn trace_and_metrics() {
        let o = parse(&["--trace", "/tmp/t.json", "--metrics"]).unwrap();
        assert_eq!(o.trace.as_deref(), Some("/tmp/t.json"));
        assert!(o.metrics);
        assert!(parse(&["--trace"]).is_err());
        let d = parse(&[]).unwrap();
        assert_eq!(d.trace, None);
        assert!(!d.metrics);
    }

    #[test]
    fn trace_sample_and_mem_metrics() {
        let o = parse(&["--trace-sample", "8", "--mem-metrics"]).unwrap();
        assert_eq!(o.trace_sample, Some(8));
        assert!(o.mem_metrics);
        assert!(parse(&["--trace-sample", "0"]).is_err());
        assert!(parse(&["--trace-sample", "x"]).is_err());
        assert!(parse(&["--trace-sample"]).is_err());
        let d = parse(&[]).unwrap();
        assert_eq!(d.trace_sample, None);
        assert!(!d.mem_metrics);
    }

    #[test]
    fn mem_sample_and_imbalance() {
        let o = parse(&["--mem-sample", "64", "--imbalance"]).unwrap();
        assert_eq!(o.mem_sample, Some(64));
        assert!(o.imbalance);
        assert!(parse(&["--mem-sample", "0"]).is_err());
        assert!(parse(&["--mem-sample", "x"]).is_err());
        assert!(parse(&["--mem-sample"]).is_err());
        let d = parse(&[]).unwrap();
        assert_eq!(d.mem_sample, None);
        assert!(!d.imbalance);
    }

    #[test]
    fn obs_flags_compose_in_any_order() {
        // The four observability flags must parse identically regardless of
        // their relative order and interleaving with other flags.
        let orders: [&[&str]; 3] = [
            &[
                "--trace-sample",
                "8",
                "--metrics",
                "--mem-metrics",
                "--trace",
                "t.json",
            ],
            &[
                "--trace",
                "t.json",
                "--mem-metrics",
                "--seed",
                "7",
                "--trace-sample",
                "8",
                "--metrics",
            ],
            &[
                "--metrics",
                "--trace-sample",
                "8",
                "--trace",
                "t.json",
                "--seed",
                "7",
                "--mem-metrics",
            ],
        ];
        for args in orders {
            let o = parse(args).unwrap();
            assert_eq!(o.trace.as_deref(), Some("t.json"), "{args:?}");
            assert_eq!(o.trace_sample, Some(8), "{args:?}");
            assert!(o.metrics && o.mem_metrics, "{args:?}");
        }
    }

    #[test]
    fn chunk_policy_flag() {
        assert_eq!(parse(&[]).unwrap().chunk_policy, ChunkPolicy::Edges);
        let o = parse(&["--chunk-policy", "rows"]).unwrap();
        assert_eq!(o.chunk_policy, ChunkPolicy::Rows);
        let o = parse(&["--chunk-policy", "edges"]).unwrap();
        assert_eq!(o.chunk_policy, ChunkPolicy::Edges);
        assert!(parse(&["--chunk-policy", "nope"]).is_err());
        assert!(parse(&["--chunk-policy"]).is_err());
    }

    #[test]
    fn data_and_only_and_json() {
        let o = parse(&["--data", "/tmp/x", "--only", "Pokec", "--json"]).unwrap();
        assert_eq!(o.data_dir.as_deref(), Some("/tmp/x"));
        assert_eq!(o.only.as_deref(), Some("Pokec"));
        assert!(o.json);
    }
}
