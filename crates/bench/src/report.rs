//! Formatting: Table II rows and the Figure 6/7 data series, as
//! terminal-friendly markdown and as machine-readable CSV blocks.

use std::fmt::Write as _;

use crate::experiment::DatasetResult;

/// `1234567` → `"1.23 MB"` (decimal units, like the paper's table).
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1000.0 && unit + 1 < UNITS.len() {
        value /= 1000.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Renders the Table II analogue: one row per (dataset, processor count),
/// with the paper's published numbers alongside for shape comparison.
pub fn print_table2(results: &[DatasetResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Graph | Nodes | Edges | EdgeList (text) | CSR (packed) | p | Time (ms) | Speed-Up (%) | Paper t (ms) | Paper SU (%) |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for r in results {
        for (i, s) in r.samples.iter().enumerate() {
            let (name, nodes, edges, el, csr) = if i == 0 {
                (
                    format!(
                        "{}{}",
                        r.name,
                        if r.real_data { "" } else { " (synthetic)" }
                    ),
                    r.nodes.to_string(),
                    r.edges.to_string(),
                    format_bytes(r.edgelist_text_bytes),
                    format_bytes(r.csr_packed_bytes),
                )
            } else {
                (
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                )
            };
            let su = if s.processors == 1 {
                "-".to_string()
            } else {
                format!("{:.2}", s.speedup_percent)
            };
            let paper_t = s
                .paper_time_ms
                .map_or("-".to_string(), |t| format!("{t:.2}"));
            let paper_su = if s.processors == 1 {
                "-".to_string()
            } else {
                s.paper_speedup_percent
                    .map_or("-".to_string(), |v| format!("{v:.2}"))
            };
            let _ = writeln!(
                out,
                "| {name} | {nodes} | {edges} | {el} | {csr} | {p} | {t:.3} | {su} | {paper_t} | {paper_su} |",
                p = s.processors,
                t = s.time_ms,
            );
        }
    }
    out
}

/// Renders the Figure 6 series: per dataset, `processors,time_ms` CSV.
pub fn print_fig6(results: &[DatasetResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 6: CSR construction time vs processors");
    let _ = writeln!(out, "dataset,processors,time_ms,paper_time_ms");
    for r in results {
        for s in &r.samples {
            let _ = writeln!(
                out,
                "{},{},{:.4},{}",
                r.name,
                s.processors,
                s.time_ms,
                s.paper_time_ms.map_or(String::new(), |t| format!("{t}"))
            );
        }
    }
    out.push('\n');
    out.push_str(&ascii_series(results, false));
    out
}

/// Renders the Figure 7 series: per dataset, `processors,speedup%` CSV.
pub fn print_fig7(results: &[DatasetResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Figure 7: speed-up gained vs processors");
    let _ = writeln!(
        out,
        "dataset,processors,speedup_percent,paper_speedup_percent"
    );
    for r in results {
        for s in &r.samples {
            let _ = writeln!(
                out,
                "{},{},{:.2},{}",
                r.name,
                s.processors,
                s.speedup_percent,
                s.paper_speedup_percent
                    .map_or(String::new(), |v| format!("{v:.2}"))
            );
        }
    }
    out.push('\n');
    out.push_str(&ascii_series(results, true));
    out
}

/// A small terminal plot: one line per dataset, one column per processor
/// count, bar length proportional to time (fig6) or speed-up (fig7).
fn ascii_series(results: &[DatasetResult], speedup: bool) -> String {
    let mut out = String::new();
    for r in results {
        let _ = writeln!(out, "{}:", r.name);
        let max = r
            .samples
            .iter()
            .map(|s| {
                if speedup {
                    s.speedup_percent.max(1.0)
                } else {
                    s.time_ms
                }
            })
            .fold(f64::MIN, f64::max);
        for s in &r.samples {
            let v = if speedup {
                s.speedup_percent
            } else {
                s.time_ms
            };
            let bar_len = if max > 0.0 {
                (v / max * 40.0).round() as usize
            } else {
                0
            };
            let _ = writeln!(
                out,
                "  p={:<3} {:>10.3} {} {}",
                s.processors,
                v,
                if speedup { "%" } else { "ms" },
                "#".repeat(bar_len)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ProcessorSample;

    fn fake_result() -> DatasetResult {
        DatasetResult {
            name: "LiveJournal",
            real_data: false,
            nodes: 100,
            edges: 500,
            edgelist_text_bytes: 4000,
            edgelist_binary_bytes: 4000,
            csr_packed_bytes: 700,
            csr_raw_bytes: 2808,
            samples: vec![
                ProcessorSample {
                    processors: 1,
                    time_ms: 10.0,
                    speedup_percent: 0.0,
                    paper_time_ms: Some(164.76),
                    paper_speedup_percent: None,
                    stages: Vec::new(),
                    mem_peak_bytes: None,
                    imbalance: Vec::new(),
                },
                ProcessorSample {
                    processors: 4,
                    time_ms: 4.0,
                    speedup_percent: 60.0,
                    paper_time_ms: Some(57.94),
                    paper_speedup_percent: Some(64.83),
                    stages: Vec::new(),
                    mem_peak_bytes: None,
                    imbalance: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(999), "999 B");
        assert_eq!(format_bytes(1_500), "1.50 KB");
        assert_eq!(format_bytes(24_730_000), "24.73 MB");
        assert_eq!(format_bytes(1_100_000_000), "1.10 GB");
    }

    #[test]
    fn table2_contains_all_cells() {
        let t = print_table2(&[fake_result()]);
        assert!(t.contains("LiveJournal (synthetic)"));
        assert!(t.contains("| 1 | 10.000 | - | 164.76 | - |"));
        assert!(t.contains("60.00"));
        assert!(t.contains("64.83"));
    }

    #[test]
    fn fig6_is_csv_plus_plot() {
        let f = print_fig6(&[fake_result()]);
        assert!(f.contains("dataset,processors,time_ms"));
        assert!(f.contains("LiveJournal,4,4.0000,57.94"));
        assert!(f.contains("p=4"));
        assert!(f.contains('#'));
    }

    #[test]
    fn fig7_reports_speedups() {
        let f = print_fig7(&[fake_result()]);
        assert!(f.contains("LiveJournal,4,60.00,64.83"));
        assert!(f.contains("LiveJournal,1,0.00,"));
    }
}
