//! Regenerates Figure 6: CSR construction time vs. number of processors,
//! one series per dataset (CSV plus a terminal bar plot).
//!
//! ```text
//! cargo run -p parcsr-bench --release --bin fig6 -- [--scale 1.0]
//! ```

use parcsr_bench::{print_fig6, run_experiment_traced, trace, Options};

// Counting allocator behind --mem-metrics; registered only in obs builds,
// so default builds keep the plain system allocator.
#[cfg(feature = "obs")]
#[global_allocator]
static ALLOC: parcsr_obs::mem::CountingAlloc = parcsr_obs::mem::CountingAlloc::new();

fn main() {
    let opts = Options::from_env();
    eprintln!(
        "fig6: scale={} procs={:?} reps={} seed={}",
        opts.scale, opts.processors, opts.reps, opts.seed
    );
    trace::setup(&opts);
    let (results, spans) = run_experiment_traced(&opts);
    if opts.json {
        println!("{}", parcsr_bench::results_to_json_pretty(&results));
    } else {
        print!("{}", print_fig6(&results));
    }
    trace::finish(&opts, &spans);
}
