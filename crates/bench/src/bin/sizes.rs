//! Supplementary size table: every structure in the workspace on every
//! dataset profile — the expanded version of Table II's two size columns,
//! including the related-work structures of Section II.
//!
//! ```text
//! cargo run -p parcsr-bench --release --bin sizes -- [--scale 0.05]
//! ```

use parcsr::{BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_baseline::{AdjacencyList, EdgeListStore, GraphStore};
use parcsr_bench::{format_bytes, trace, Options};
use parcsr_succinct::K2Tree;

// Counting allocator behind --mem-metrics; registered only in obs builds,
// so default builds keep the plain system allocator.
#[cfg(feature = "obs")]
#[global_allocator]
static ALLOC: parcsr_obs::mem::CountingAlloc = parcsr_obs::mem::CountingAlloc::new();

fn main() {
    let opts = Options::from_env();
    eprintln!("sizes: scale={} seed={}", opts.scale, opts.seed);
    trace::setup(&opts);
    println!(
        "| Graph | Edges | EdgeList text | EdgeList bin | AdjList | CSR | Packed (raw) | Packed (gap) | k2-tree |"
    );
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for profile in parcsr_graph::paper_datasets() {
        if let Some(only) = &opts.only {
            if !profile.name.to_lowercase().contains(&only.to_lowercase()) {
                continue;
            }
        }
        let graph = profile.synthesize(opts.scale, opts.seed).deduped();
        let csr = CsrBuilder::new().build(&graph);
        let raw = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 4);
        let gap = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
        let adj = AdjacencyList::from_edge_list(&graph);
        let flat = EdgeListStore::from_edge_list(&graph);
        let k2 = K2Tree::from_edges(graph.num_nodes(), graph.edges());
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            profile.name,
            graph.num_edges(),
            format_bytes(graph.text_bytes()),
            format_bytes(flat.heap_bytes()),
            format_bytes(adj.heap_bytes()),
            format_bytes(csr.heap_bytes()),
            format_bytes(raw.packed_bytes()),
            format_bytes(gap.packed_bytes()),
            format_bytes(k2.packed_bytes()),
        );
    }
    trace::finish(&opts, &parcsr_obs::drain());
}
