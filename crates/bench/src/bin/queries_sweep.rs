//! Supplementary query-throughput sweep for Section V: batch neighborhood
//! queries (Algorithm 6), batch edge-existence queries (Algorithm 7), and
//! the single-edge split search on a hub row (Algorithm 8), each across the
//! processor counts of Table II — the quantitative version of the paper's
//! "the time required to search reduces" claim.
//!
//! ```text
//! cargo run -p parcsr-bench --release --bin queries_sweep -- [--scale 0.05] [--procs 1,4,8]
//! ```

use std::time::Instant;

use parcsr::query::{edge_exists_split, edges_exist_batch_binary, neighbors_batch};
use parcsr::{with_processors, BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_bench::{trace, Options};
use parcsr_graph::NodeId;

// Counting allocator behind --mem-metrics; registered only in obs builds,
// so default builds keep the plain system allocator.
#[cfg(feature = "obs")]
#[global_allocator]
static ALLOC: parcsr_obs::mem::CountingAlloc = parcsr_obs::mem::CountingAlloc::new();

const BATCH: usize = 1 << 14;

fn main() {
    let opts = Options::from_env();
    trace::setup(&opts);
    let profile = &parcsr_graph::paper_datasets()[3]; // WebNotreDame profile
    let graph = profile.synthesize(opts.scale.min(0.5), opts.seed);
    let csr = CsrBuilder::new().build(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
    let n = csr.num_nodes() as u32;
    eprintln!(
        "queries_sweep: {} stand-in, {} nodes / {} edges, batch {BATCH}",
        profile.name,
        csr.num_nodes(),
        csr.num_edges()
    );

    let node_queries: Vec<NodeId> = (0..BATCH)
        .map(|i| ((i * 48271) % n as usize) as u32)
        .collect();
    let edge_queries: Vec<(NodeId, NodeId)> = (0..BATCH)
        .map(|i| {
            if i % 2 == 0 {
                graph.edges()[(i * 31) % graph.num_edges()]
            } else {
                (
                    ((i * 16807) % n as usize) as u32,
                    ((i * 69621) % n as usize) as u32,
                )
            }
        })
        .collect();
    let hub = (0..n).max_by_key(|&u| csr.degree(u)).expect("non-empty");
    let target = *csr.neighbors(hub).last().expect("hub has neighbors");

    println!(
        "| p | neighbors (kq/s) | edge-exist (kq/s) | single split on hub deg {} (µs) |",
        csr.degree(hub)
    );
    println!("|---:|---:|---:|---:|");
    for &p in &opts.processors {
        let (nq, eq, sq) = with_processors(p, || {
            let t = Instant::now();
            for _ in 0..opts.reps {
                std::hint::black_box(neighbors_batch(&packed, &node_queries, p));
            }
            let nq = (BATCH * opts.reps) as f64 / t.elapsed().as_secs_f64() / 1e3;

            let t = Instant::now();
            for _ in 0..opts.reps {
                std::hint::black_box(edges_exist_batch_binary(&packed, &edge_queries, p));
            }
            let eq = (BATCH * opts.reps) as f64 / t.elapsed().as_secs_f64() / 1e3;

            let single_reps = 2_000 * opts.reps;
            let t = Instant::now();
            for _ in 0..single_reps {
                std::hint::black_box(edge_exists_split(&packed, hub, target, p));
            }
            let sq = t.elapsed().as_secs_f64() * 1e6 / single_reps as f64;
            (nq, eq, sq)
        });
        println!("| {p} | {nq:.1} | {eq:.1} | {sq:.2} |");
    }
    trace::finish(&opts, &parcsr_obs::drain());
}
