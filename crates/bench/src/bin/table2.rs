//! Regenerates Table II: compression results per dataset and processor
//! count, with the paper's published numbers alongside.
//!
//! ```text
//! cargo run -p parcsr-bench --release --bin table2 -- [--scale 1.0] [--procs 1,4,8,16,64]
//! ```

use parcsr_bench::{print_table2, run_experiment_traced, trace, Options};

// Counting allocator behind --mem-metrics; registered only in obs builds,
// so default builds keep the plain system allocator.
#[cfg(feature = "obs")]
#[global_allocator]
static ALLOC: parcsr_obs::mem::CountingAlloc = parcsr_obs::mem::CountingAlloc::new();

fn main() {
    let opts = Options::from_env();
    eprintln!(
        "table2: scale={} procs={:?} reps={} seed={} (host parallelism: {})",
        opts.scale,
        opts.processors,
        opts.reps,
        opts.seed,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    trace::setup(&opts);
    let (results, spans) = run_experiment_traced(&opts);
    if opts.json {
        println!("{}", parcsr_bench::results_to_json_pretty(&results));
    } else {
        print!("{}", print_table2(&results));
    }
    trace::finish(&opts, &spans);
}
