//! Closed-loop serving load driver: N logical clients issue Zipf-skewed,
//! degree-correlated query mixes (Algorithms 6/7/8 in configurable ratios)
//! against a packed CSR, with per-window qps and latency percentiles and an
//! achieved-vs-target SLO verdict.
//!
//! ```text
//! cargo run --release -p parcsr-bench --bin queries_closed_loop -- \
//!     --graph hub --clients 8 --duration-ms 2000 --window-ms 250 --json
//! ```
//!
//! `--json` output is consumed by `cargo xtask slo-check`; built with
//! `--features obs`, `--trace <file>` additionally exports `query.win.*`
//! counter events for `chrome://tracing` / `cargo xtask check-trace`.

use parcsr_bench::closed_loop::{render_table, run, spawn_admin, DriverOptions};
use parcsr_bench::{trace, Options, ToJson};

// Counting allocator behind --mem-metrics; registered only in obs builds,
// so default builds keep the plain system allocator.
#[cfg(feature = "obs")]
#[global_allocator]
static ALLOC: parcsr_obs::mem::CountingAlloc = parcsr_obs::mem::CountingAlloc::new();

fn main() {
    let opts = DriverOptions::from_env();
    // The shared obs wiring (sampling periods, runtime switch, trace file)
    // reads the harness Options shape; mirror the relevant flags into one.
    let obs_opts = Options {
        trace: opts.trace.clone(),
        metrics: opts.metrics,
        trace_sample: opts.trace_sample,
        ..Options::default()
    };
    trace::setup(&obs_opts);

    // Live introspection for the duration of the run: scrape
    // 127.0.0.1:<port> with `parcsr watch`, curl, or a Prometheus server.
    let mut admin = spawn_admin(&opts);

    let report = run(&opts);
    if let Some(server) = admin.as_mut() {
        server.shutdown();
    }

    if opts.json {
        eprint!("{}", render_table(&report));
        println!("{}", report.to_json().pretty());
    } else {
        print!("{}", render_table(&report));
    }
    trace::finish(&obs_opts, &parcsr_obs::drain());
    if report.slo.met == Some(false) {
        std::process::exit(1);
    }
}
