#![warn(missing_docs)]

//! Benchmark harness regenerating the paper's evaluation (Section VI).
//!
//! Three binaries print the paper's artifacts:
//!
//! * `table2` — Table II: per dataset, edge-list size, packed-CSR size, and
//!   construction time/speed-up for each processor count;
//! * `fig6` — Figure 6: construction time vs. processor count series;
//! * `fig7` — Figure 7: speed-up percentage vs. processor count series.
//!
//! The `benches/` directory holds Criterion microbenches per pipeline stage
//! plus the ablations listed in DESIGN.md §4.
//!
//! By default the harness synthesizes profile-matched stand-ins at 1/16 of
//! the published sizes (laptop-friendly); `--scale 1.0` reproduces full-size
//! runs, and `--data <dir>` reads real SNAP files named `<dataset>.txt`
//! instead of synthesizing.
//!
//! Built with `--features obs`, every binary also accepts `--trace <file>`
//! (Chrome `chrome://tracing` JSON of the per-stage pipeline spans) and
//! `--metrics` (per-stage/per-worker summary plus query-path histograms on
//! stderr); the JSON output then carries a `stages` breakdown per
//! (dataset, processor-count) sample.

pub mod closed_loop;
pub mod experiment;
pub mod json;
pub mod options;
pub mod report;
pub mod trace;

pub use experiment::{
    run_experiment, run_experiment_traced, DatasetResult, ProcessorSample, StageImbalance,
};
pub use json::{results_to_json_pretty, Json, ToJson};
pub use options::Options;
pub use report::{format_bytes, print_fig6, print_fig7, print_table2};
