//! Argument parsing for the `parcsr` tool (hand-rolled: five subcommands,
//! no dependency needed).

use std::fmt;

use parcsr::ChunkPolicy;

/// Which synthetic model `generate` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// R-MAT (default; social-network-like skew).
    Rmat,
    /// Erdős–Rényi G(n, m).
    ErdosRenyi,
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic graph into a SNAP text file.
    Generate {
        /// Generator model.
        model: Model,
        /// Node count.
        nodes: usize,
        /// Edge count (for BA: edges per node).
        edges: usize,
        /// PRNG seed.
        seed: u64,
        /// Output path.
        out: String,
    },
    /// Compress a SNAP text file into a `.pcsr` file.
    Compress {
        /// Input SNAP path.
        input: String,
        /// Output `.pcsr` path.
        out: String,
        /// Use gap coding for the column array.
        gap: bool,
        /// Processor count (0 = all).
        procs: usize,
        /// How build stages split rows into parallel chunks.
        chunk_policy: ChunkPolicy,
    },
    /// Print degree statistics of a SNAP text file.
    Stats {
        /// Input SNAP path.
        input: String,
    },
    /// Print header information of a `.pcsr` file.
    Info {
        /// Input `.pcsr` path.
        input: String,
    },
    /// Query a `.pcsr` file.
    Query {
        /// Input `.pcsr` path.
        input: String,
        /// Nodes whose neighborhoods to fetch.
        neighbors: Vec<u32>,
        /// Edges whose existence to check.
        edges: Vec<(u32, u32)>,
        /// Processor count (0 = all).
        procs: usize,
        /// How query batches split across processors.
        chunk_policy: ChunkPolicy,
    },
    /// Compress a temporal triplet file (`u v t` lines) into a `.tcsr`.
    TemporalCompress {
        /// Input temporal triplet path.
        input: String,
        /// Output `.tcsr` path.
        out: String,
        /// Use gap-coded frames.
        gap: bool,
        /// Processor count (0 = all).
        procs: usize,
        /// How the event stream splits into parallel chunks.
        chunk_policy: ChunkPolicy,
    },
    /// Poll a running process's admin plane and render a live per-kind /
    /// per-degree-class latency table.
    Watch {
        /// Admin endpoint address (`host:port`).
        addr: String,
        /// Poll interval in milliseconds.
        interval_ms: u64,
        /// Scrape once, print the table, and exit (CI mode).
        once: bool,
        /// Also write each raw exposition scrape to this path.
        out: Option<String>,
    },
    /// Query a `.tcsr` file at a time-frame.
    TemporalQuery {
        /// Input `.tcsr` path.
        input: String,
        /// Time-frame to query.
        frame: u32,
        /// Edges whose activity to check at `frame`.
        edges: Vec<(u32, u32)>,
        /// Nodes whose active neighborhoods to fetch at `frame`.
        neighbors: Vec<u32>,
        /// Print the number of active edges at `frame`.
        count: bool,
    },
}

/// Global observability switches, valid anywhere on the command line and
/// stripped from the argument list before subcommand parsing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsOptions {
    /// Write a Chrome trace-event JSON of the run to this path.
    pub trace: Option<String>,
    /// Print the per-stage/metrics summary to stderr after the run.
    pub metrics: bool,
    /// Span sampling period (record every Nth same-name span per thread).
    pub trace_sample: Option<u32>,
    /// Track live/peak heap bytes and per-stage memory peaks.
    pub mem_metrics: bool,
    /// Mid-span memory sampling period: every Nth allocation updates the
    /// per-span high-water mark (implies memory accounting).
    pub mem_sample: Option<u64>,
    /// Serve the live admin plane (metrics/stats/health) on
    /// `127.0.0.1:<port>` for the duration of the command (`0` picks an
    /// ephemeral port).
    pub admin_port: Option<u16>,
}

impl ObsOptions {
    /// Extracts `--trace FILE` / `--metrics` / `--trace-sample N` /
    /// `--mem-metrics` / `--mem-sample N` from `args` (valid in any
    /// position and order), returning the switches and the remaining
    /// arguments in order.
    pub fn extract<I>(args: I) -> Result<(ObsOptions, Vec<String>), ParseError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut obs = ObsOptions::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--trace" => {
                    obs.trace = Some(
                        it.next()
                            .ok_or_else(|| invalid("--trace requires a value"))?,
                    );
                }
                "--metrics" => obs.metrics = true,
                "--trace-sample" => {
                    let n: u32 = it
                        .next()
                        .ok_or_else(|| invalid("--trace-sample requires a value"))?
                        .parse()
                        .map_err(|e| invalid(format!("--trace-sample: {e}")))?;
                    if n == 0 {
                        return Err(invalid("--trace-sample must be at least 1"));
                    }
                    obs.trace_sample = Some(n);
                }
                "--mem-metrics" => obs.mem_metrics = true,
                "--mem-sample" => {
                    let n: u64 = it
                        .next()
                        .ok_or_else(|| invalid("--mem-sample requires a value"))?
                        .parse()
                        .map_err(|e| invalid(format!("--mem-sample: {e}")))?;
                    if n == 0 {
                        return Err(invalid("--mem-sample must be at least 1"));
                    }
                    obs.mem_sample = Some(n);
                }
                "--admin-port" => {
                    let p: u16 = it
                        .next()
                        .ok_or_else(|| invalid("--admin-port requires a value"))?
                        .parse()
                        .map_err(|e| invalid(format!("--admin-port: {e}")))?;
                    obs.admin_port = Some(p);
                }
                _ => rest.push(arg),
            }
        }
        Ok((obs, rest))
    }

    /// True when any switch that turns on collection was given.
    pub fn active(&self) -> bool {
        self.trace.is_some() || self.metrics || self.mem_metrics || self.mem_sample.is_some()
    }
}

/// Parse failures, including the help text path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// `--help` or no arguments: print usage.
    Help,
    /// Anything malformed, with an explanation.
    Invalid(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Help => f.write_str(USAGE),
            ParseError::Invalid(msg) => write!(f, "{msg}\n\n{USAGE}"),
        }
    }
}

impl std::error::Error for ParseError {}

const USAGE: &str = "\
usage: parcsr <command> [flags]

commands:
  generate --nodes N --edges M --out FILE [--model rmat|er|ba] [--seed S]
  compress INPUT --out FILE [--mode raw|gap] [--procs P]
           [--chunk-policy rows|edges]
  stats    INPUT
  info     FILE.pcsr
  query    FILE.pcsr [--neighbors u1,u2,...] [--edge u,v] [--procs P]
           [--chunk-policy rows|edges]
  temporal-compress INPUT --out FILE [--mode random|gap] [--procs P]
           [--chunk-policy rows|edges]
  temporal-query FILE.tcsr --frame T [--edge u,v] [--neighbors u1,u2] [--count]
  watch    HOST:PORT [--interval-ms N] [--once] [--out FILE]

  --chunk-policy controls how parallel work splits into chunks: `edges`
  (default) weights rows/queries by degree so hub nodes spread across
  processors; `rows` restores the historical near-equal count split.

  watch polls a running process's admin plane (see --admin-port) and
  renders a refreshing per-kind/per-class latency table; --once scrapes a
  single time and prints it (CI mode), --out also saves the raw scrape.

global flags (any command):
  --trace FILE    write a Chrome trace (chrome://tracing JSON) of the run
  --metrics       print the per-stage/metrics summary to stderr
  --trace-sample N  record every Nth same-name span per thread
                  (default: $PARCSR_TRACE_SAMPLE, else 1 = record all)
  --mem-metrics   track live/peak heap bytes and per-stage memory peaks
  --mem-sample N  sample the live-heap high-water mark every Nth allocation
                  (default: $PARCSR_MEM_SAMPLE, else off; implies accounting)
  --admin-port P  serve live metrics/stats/health on 127.0.0.1:P while the
                  command runs (0 picks an ephemeral port)
                  (all need a binary built with --features obs)";

fn invalid(msg: impl Into<String>) -> ParseError {
    ParseError::Invalid(msg.into())
}

struct Args {
    items: std::vec::IntoIter<String>,
}

impl Args {
    fn value(&mut self, flag: &str) -> Result<String, ParseError> {
        self.items
            .next()
            .ok_or_else(|| invalid(format!("{flag} requires a value")))
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, ParseError>
    where
        T::Err: fmt::Display,
    {
        self.value(flag)?
            .parse()
            .map_err(|e| invalid(format!("{flag}: {e}")))
    }
}

fn parse_pair(s: &str, flag: &str) -> Result<(u32, u32), ParseError> {
    let (a, b) = s
        .split_once(',')
        .ok_or_else(|| invalid(format!("{flag} expects 'u,v'")))?;
    Ok((
        a.trim()
            .parse()
            .map_err(|e| invalid(format!("{flag}: {e}")))?,
        b.trim()
            .parse()
            .map_err(|e| invalid(format!("{flag}: {e}")))?,
    ))
}

impl Command {
    /// Parses an argument list (without the program name).
    pub fn parse<I>(args: I) -> Result<Command, ParseError>
    where
        I: IntoIterator<Item = String>,
    {
        let items: Vec<String> = args.into_iter().collect();
        let mut args = Args {
            items: items.into_iter(),
        };
        let command = args.items.next().ok_or(ParseError::Help)?;
        match command.as_str() {
            "--help" | "-h" | "help" => Err(ParseError::Help),
            "generate" => {
                let (mut model, mut nodes, mut edges, mut seed, mut out) =
                    (Model::Rmat, None, None, 42u64, None);
                while let Some(flag) = args.items.next() {
                    match flag.as_str() {
                        "--model" => {
                            model = match args.value("--model")?.as_str() {
                                "rmat" => Model::Rmat,
                                "er" => Model::ErdosRenyi,
                                "ba" => Model::BarabasiAlbert,
                                other => return Err(invalid(format!("unknown model {other}"))),
                            }
                        }
                        "--nodes" => nodes = Some(args.parsed("--nodes")?),
                        "--edges" => edges = Some(args.parsed("--edges")?),
                        "--seed" => seed = args.parsed("--seed")?,
                        "--out" => out = Some(args.value("--out")?),
                        other => return Err(invalid(format!("unknown flag {other}"))),
                    }
                }
                Ok(Command::Generate {
                    model,
                    nodes: nodes.ok_or_else(|| invalid("generate requires --nodes"))?,
                    edges: edges.ok_or_else(|| invalid("generate requires --edges"))?,
                    seed,
                    out: out.ok_or_else(|| invalid("generate requires --out"))?,
                })
            }
            "compress" => {
                let input = args
                    .value("compress")
                    .map_err(|_| invalid("compress requires an input path"))?;
                let (mut out, mut gap, mut procs) = (None, true, 0usize);
                let mut chunk_policy = ChunkPolicy::default();
                while let Some(flag) = args.items.next() {
                    match flag.as_str() {
                        "--out" => out = Some(args.value("--out")?),
                        "--mode" => {
                            gap = match args.value("--mode")?.as_str() {
                                "gap" => true,
                                "raw" => false,
                                other => return Err(invalid(format!("unknown mode {other}"))),
                            }
                        }
                        "--procs" => procs = args.parsed("--procs")?,
                        "--chunk-policy" => {
                            chunk_policy = ChunkPolicy::parse(&args.value("--chunk-policy")?)
                                .map_err(invalid)?
                        }
                        other => return Err(invalid(format!("unknown flag {other}"))),
                    }
                }
                Ok(Command::Compress {
                    input,
                    out: out.ok_or_else(|| invalid("compress requires --out"))?,
                    gap,
                    procs,
                    chunk_policy,
                })
            }
            "stats" => Ok(Command::Stats {
                input: args
                    .value("stats")
                    .map_err(|_| invalid("stats requires an input path"))?,
            }),
            "info" => Ok(Command::Info {
                input: args
                    .value("info")
                    .map_err(|_| invalid("info requires an input path"))?,
            }),
            "query" => {
                let input = args
                    .value("query")
                    .map_err(|_| invalid("query requires an input path"))?;
                let (mut neighbors, mut edges, mut procs) = (Vec::new(), Vec::new(), 0usize);
                let mut chunk_policy = ChunkPolicy::default();
                while let Some(flag) = args.items.next() {
                    match flag.as_str() {
                        "--neighbors" => {
                            for part in args.value("--neighbors")?.split(',') {
                                neighbors.push(
                                    part.trim()
                                        .parse()
                                        .map_err(|e| invalid(format!("--neighbors: {e}")))?,
                                );
                            }
                        }
                        "--edge" => edges.push(parse_pair(&args.value("--edge")?, "--edge")?),
                        "--procs" => procs = args.parsed("--procs")?,
                        "--chunk-policy" => {
                            chunk_policy = ChunkPolicy::parse(&args.value("--chunk-policy")?)
                                .map_err(invalid)?
                        }
                        other => return Err(invalid(format!("unknown flag {other}"))),
                    }
                }
                if neighbors.is_empty() && edges.is_empty() {
                    return Err(invalid("query needs --neighbors and/or --edge"));
                }
                Ok(Command::Query {
                    input,
                    neighbors,
                    edges,
                    procs,
                    chunk_policy,
                })
            }
            "temporal-compress" => {
                let input = args
                    .value("temporal-compress")
                    .map_err(|_| invalid("temporal-compress requires an input path"))?;
                let (mut out, mut gap, mut procs) = (None, true, 0usize);
                let mut chunk_policy = ChunkPolicy::default();
                while let Some(flag) = args.items.next() {
                    match flag.as_str() {
                        "--out" => out = Some(args.value("--out")?),
                        "--mode" => {
                            gap = match args.value("--mode")?.as_str() {
                                "gap" => true,
                                "random" => false,
                                other => return Err(invalid(format!("unknown mode {other}"))),
                            }
                        }
                        "--procs" => procs = args.parsed("--procs")?,
                        "--chunk-policy" => {
                            chunk_policy = ChunkPolicy::parse(&args.value("--chunk-policy")?)
                                .map_err(invalid)?
                        }
                        other => return Err(invalid(format!("unknown flag {other}"))),
                    }
                }
                Ok(Command::TemporalCompress {
                    input,
                    out: out.ok_or_else(|| invalid("temporal-compress requires --out"))?,
                    gap,
                    procs,
                    chunk_policy,
                })
            }
            "temporal-query" => {
                let input = args
                    .value("temporal-query")
                    .map_err(|_| invalid("temporal-query requires an input path"))?;
                let (mut frame, mut edges, mut neighbors, mut count) =
                    (None, Vec::new(), Vec::new(), false);
                while let Some(flag) = args.items.next() {
                    match flag.as_str() {
                        "--frame" => frame = Some(args.parsed("--frame")?),
                        "--edge" => edges.push(parse_pair(&args.value("--edge")?, "--edge")?),
                        "--neighbors" => {
                            for part in args.value("--neighbors")?.split(',') {
                                neighbors.push(
                                    part.trim()
                                        .parse()
                                        .map_err(|e| invalid(format!("--neighbors: {e}")))?,
                                );
                            }
                        }
                        "--count" => count = true,
                        other => return Err(invalid(format!("unknown flag {other}"))),
                    }
                }
                if edges.is_empty() && neighbors.is_empty() && !count {
                    return Err(invalid(
                        "temporal-query needs --edge, --neighbors or --count",
                    ));
                }
                Ok(Command::TemporalQuery {
                    input,
                    frame: frame.ok_or_else(|| invalid("temporal-query requires --frame"))?,
                    edges,
                    neighbors,
                    count,
                })
            }
            "watch" => {
                let addr = args
                    .value("watch")
                    .map_err(|_| invalid("watch requires a host:port address"))?;
                let (mut interval_ms, mut once, mut out) = (1_000u64, false, None);
                while let Some(flag) = args.items.next() {
                    match flag.as_str() {
                        "--interval-ms" => {
                            interval_ms = args.parsed("--interval-ms")?;
                            if interval_ms == 0 {
                                return Err(invalid("--interval-ms must be at least 1"));
                            }
                        }
                        "--once" => once = true,
                        "--out" => out = Some(args.value("--out")?),
                        other => return Err(invalid(format!("unknown flag {other}"))),
                    }
                }
                Ok(Command::Watch {
                    addr,
                    interval_ms,
                    once,
                    out,
                })
            }
            other => Err(invalid(format!("unknown command {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, ParseError> {
        Command::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn generate_full() {
        let c = parse(&[
            "generate",
            "--model",
            "er",
            "--nodes",
            "100",
            "--edges",
            "500",
            "--seed",
            "7",
            "--out",
            "/tmp/g.txt",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Generate {
                model: Model::ErdosRenyi,
                nodes: 100,
                edges: 500,
                seed: 7,
                out: "/tmp/g.txt".into(),
            }
        );
    }

    #[test]
    fn generate_requires_counts() {
        let err = parse(&["generate", "--out", "x"]).unwrap_err();
        assert!(err.to_string().contains("--nodes"));
    }

    #[test]
    fn compress_defaults() {
        let c = parse(&["compress", "in.txt", "--out", "out.pcsr"]).unwrap();
        assert_eq!(
            c,
            Command::Compress {
                input: "in.txt".into(),
                out: "out.pcsr".into(),
                gap: true,
                procs: 0,
                chunk_policy: ChunkPolicy::Edges,
            }
        );
    }

    #[test]
    fn chunk_policy_flag() {
        let c = parse(&["compress", "in.txt", "--out", "o", "--chunk-policy", "rows"]).unwrap();
        assert!(matches!(
            c,
            Command::Compress {
                chunk_policy: ChunkPolicy::Rows,
                ..
            }
        ));
        let c = parse(&[
            "query",
            "g.pcsr",
            "--edge",
            "1,2",
            "--chunk-policy",
            "edges",
        ])
        .unwrap();
        assert!(matches!(
            c,
            Command::Query {
                chunk_policy: ChunkPolicy::Edges,
                ..
            }
        ));
        let c = parse(&[
            "temporal-compress",
            "ev.txt",
            "--out",
            "g.tcsr",
            "--chunk-policy",
            "rows",
        ])
        .unwrap();
        assert!(matches!(
            c,
            Command::TemporalCompress {
                chunk_policy: ChunkPolicy::Rows,
                ..
            }
        ));
        assert!(parse(&["compress", "in.txt", "--out", "o", "--chunk-policy", "nope"]).is_err());
        assert!(parse(&["compress", "in.txt", "--out", "o", "--chunk-policy"]).is_err());
    }

    #[test]
    fn compress_raw_mode() {
        let c = parse(&[
            "compress", "in.txt", "--out", "o", "--mode", "raw", "--procs", "8",
        ])
        .unwrap();
        assert!(matches!(
            c,
            Command::Compress {
                gap: false,
                procs: 8,
                ..
            }
        ));
    }

    #[test]
    fn query_mixed() {
        let c = parse(&[
            "query",
            "g.pcsr",
            "--neighbors",
            "1, 2,3",
            "--edge",
            "4,5",
            "--edge",
            "6,7",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Query {
                input: "g.pcsr".into(),
                neighbors: vec![1, 2, 3],
                edges: vec![(4, 5), (6, 7)],
                procs: 0,
                chunk_policy: ChunkPolicy::Edges,
            }
        );
    }

    #[test]
    fn query_requires_something() {
        assert!(parse(&["query", "g.pcsr"]).is_err());
    }

    #[test]
    fn temporal_compress() {
        let c = parse(&[
            "temporal-compress",
            "ev.txt",
            "--out",
            "g.tcsr",
            "--mode",
            "random",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::TemporalCompress {
                input: "ev.txt".into(),
                out: "g.tcsr".into(),
                gap: false,
                procs: 0,
                chunk_policy: ChunkPolicy::Edges,
            }
        );
        assert!(parse(&["temporal-compress", "ev.txt"]).is_err());
    }

    #[test]
    fn temporal_query() {
        let c = parse(&[
            "temporal-query",
            "g.tcsr",
            "--frame",
            "3",
            "--edge",
            "1,2",
            "--neighbors",
            "0,4",
            "--count",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::TemporalQuery {
                input: "g.tcsr".into(),
                frame: 3,
                edges: vec![(1, 2)],
                neighbors: vec![0, 4],
                count: true,
            }
        );
        assert!(parse(&["temporal-query", "g.tcsr", "--frame", "1"]).is_err());
        assert!(
            parse(&["temporal-query", "g.tcsr", "--count"]).is_err(),
            "frame required"
        );
    }

    #[test]
    fn obs_flags_strip_from_anywhere() {
        let args = [
            "--metrics",
            "compress",
            "--trace-sample",
            "8",
            "in.txt",
            "--trace",
            "/tmp/t.json",
            "--out",
            "o",
            "--mem-metrics",
        ];
        let (obs, rest) = ObsOptions::extract(args.iter().map(|s| s.to_string())).unwrap();
        assert_eq!(obs.trace.as_deref(), Some("/tmp/t.json"));
        assert!(obs.metrics);
        assert_eq!(obs.trace_sample, Some(8));
        assert!(obs.mem_metrics);
        assert!(obs.active());
        let c = Command::parse(rest).unwrap();
        assert!(matches!(c, Command::Compress { .. }));

        let (obs, rest) = ObsOptions::extract(["stats".to_string(), "g.txt".to_string()]).unwrap();
        assert!(!obs.active());
        assert_eq!(rest, ["stats", "g.txt"]);

        assert!(ObsOptions::extract(["--trace".to_string()]).is_err());
        assert!(ObsOptions::extract(["--trace-sample".to_string()]).is_err());
        assert!(
            ObsOptions::extract(["--trace-sample".to_string(), "0".to_string()]).is_err(),
            "period 0 is invalid"
        );
    }

    #[test]
    fn mem_sample_flag_strips_and_activates() {
        let args = ["stats", "--mem-sample", "64", "g.txt"];
        let (obs, rest) = ObsOptions::extract(args.iter().map(|s| s.to_string())).unwrap();
        assert_eq!(obs.mem_sample, Some(64));
        assert!(obs.active(), "--mem-sample alone turns collection on");
        assert_eq!(rest, ["stats", "g.txt"]);
        assert!(ObsOptions::extract(["--mem-sample".to_string()]).is_err());
        assert!(
            ObsOptions::extract(["--mem-sample".to_string(), "0".to_string()]).is_err(),
            "period 0 is invalid"
        );
    }

    #[test]
    fn obs_flags_compose_in_any_order() {
        let orders: [&[&str]; 2] = [
            &[
                "--mem-metrics",
                "query",
                "--trace",
                "t.json",
                "g.pcsr",
                "--edge",
                "1,2",
                "--metrics",
                "--trace-sample",
                "4",
            ],
            &[
                "--trace-sample",
                "4",
                "--metrics",
                "query",
                "g.pcsr",
                "--mem-metrics",
                "--edge",
                "1,2",
                "--trace",
                "t.json",
            ],
        ];
        for args in orders {
            let (obs, rest) = ObsOptions::extract(args.iter().map(|s| s.to_string())).unwrap();
            assert_eq!(obs.trace.as_deref(), Some("t.json"), "{args:?}");
            assert_eq!(obs.trace_sample, Some(4), "{args:?}");
            assert!(obs.metrics && obs.mem_metrics, "{args:?}");
            let c = Command::parse(rest).unwrap();
            assert!(matches!(c, Command::Query { .. }), "{args:?}");
        }
    }

    #[test]
    fn watch_parses_with_defaults_and_flags() {
        let c = parse(&["watch", "127.0.0.1:9184"]).unwrap();
        assert_eq!(
            c,
            Command::Watch {
                addr: "127.0.0.1:9184".into(),
                interval_ms: 1_000,
                once: false,
                out: None,
            }
        );
        let c = parse(&[
            "watch",
            "localhost:9184",
            "--interval-ms",
            "250",
            "--once",
            "--out",
            "/tmp/scrape.txt",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Watch {
                addr: "localhost:9184".into(),
                interval_ms: 250,
                once: true,
                out: Some("/tmp/scrape.txt".into()),
            }
        );
        assert!(parse(&["watch"]).is_err());
        assert!(parse(&["watch", "a:1", "--interval-ms", "0"]).is_err());
        assert!(parse(&["watch", "a:1", "--bogus"]).is_err());
    }

    #[test]
    fn admin_port_strips_from_anywhere() {
        let args = ["stats", "--admin-port", "9184", "g.txt"];
        let (obs, rest) = ObsOptions::extract(args.iter().map(|s| s.to_string())).unwrap();
        assert_eq!(obs.admin_port, Some(9184));
        assert!(
            !obs.active(),
            "--admin-port serves live state; it is not a collection switch"
        );
        assert_eq!(rest, ["stats", "g.txt"]);
        assert!(ObsOptions::extract(["--admin-port".to_string()]).is_err());
        assert!(
            ObsOptions::extract(["--admin-port".to_string(), "70000".to_string()]).is_err(),
            "ports are u16"
        );
    }

    #[test]
    fn help_and_unknowns() {
        assert_eq!(parse(&[]).unwrap_err(), ParseError::Help);
        assert_eq!(parse(&["--help"]).unwrap_err(), ParseError::Help);
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["generate", "--bogus"]).is_err());
        assert!(parse(&["query", "f", "--edge", "nope"]).is_err());
    }
}
