//! `parcsr watch`: poll a running process's admin plane and render a
//! refreshing per-query-kind / per-degree-class latency table — the live
//! view of the `query.win.*` grid the closed-loop driver (and any future
//! server) publishes through `--admin-port`.
//!
//! The rendering is a pure function from a parsed exposition to a string,
//! so the table is unit-tested without sockets; only the poll loop talks
//! to the network (via [`parcsr_server::client`]).

use parcsr_obs::expo::{self, Exposition};
use std::fmt::Write as _;

/// The windowed summary family name the admin plane exposes.
const WIN_FAMILY: &str = "parcsr_query_win_ns";

fn gauge(expo: &Exposition, name: &str) -> Option<f64> {
    expo.samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .map(|s| s.value)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// One `(kind, class)` row assembled from the summary family's samples.
struct Row {
    kind: String,
    class: String,
    count: f64,
    p50: Option<f64>,
    p95: Option<f64>,
    p99: Option<f64>,
    max: Option<f64>,
}

fn collect_rows(expo: &Exposition) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::new();
    let cell = |s: &expo::Sample| -> Option<(String, String)> {
        Some((s.label("kind")?.to_string(), s.label("class")?.to_string()))
    };
    // First pass establishes row order from the `_count` series (render
    // emits cells in slab-grid order, which groups kinds together).
    for s in &expo.samples {
        if s.name != format!("{WIN_FAMILY}_count") {
            continue;
        }
        if let Some((kind, class)) = cell(s) {
            rows.push(Row {
                kind,
                class,
                count: s.value,
                p50: None,
                p95: None,
                p99: None,
                max: None,
            });
        }
    }
    for s in &expo.samples {
        let Some((kind, class)) = cell(s) else {
            continue;
        };
        let Some(row) = rows.iter_mut().find(|r| r.kind == kind && r.class == class) else {
            continue;
        };
        if s.name == WIN_FAMILY {
            match s.label("quantile") {
                Some("0.5") => row.p50 = Some(s.value),
                Some("0.95") => row.p95 = Some(s.value),
                Some("0.99") => row.p99 = Some(s.value),
                _ => {}
            }
        } else if s.name == format!("{WIN_FAMILY}_max") {
            row.max = Some(s.value);
        }
    }
    rows
}

/// Renders the per-kind/per-class table for one scrape. Pure: feed it any
/// parsed exposition (tests use canned documents).
#[must_use]
pub fn render_table(expo: &Exposition, addr: &str) -> String {
    let mut out = String::new();
    let epoch = gauge(expo, "parcsr_query_win_epoch");
    let dur_ns = gauge(expo, "parcsr_query_win_duration_ns").unwrap_or(0.0);
    let rows = collect_rows(expo);
    let total: f64 = rows.iter().map(|r| r.count).sum();
    let qps = if dur_ns > 0.0 {
        total / (dur_ns / 1e9)
    } else {
        0.0
    };

    let _ = write!(out, "parcsr watch — {addr}");
    if let Some(epoch) = epoch {
        let _ = write!(out, " — window {epoch:.0}");
    }
    if dur_ns > 0.0 {
        let _ = write!(out, " ({:.0}ms, {qps:.0} qps)", dur_ns / 1e6);
    }
    out.push('\n');

    if rows.is_empty() {
        out.push_str("  (no windowed series yet — is the target recording?)\n");
        return out;
    }

    let _ = writeln!(
        out,
        "  {:<12} {:<5} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "kind", "class", "count", "p50", "p95", "p99", "max"
    );
    for r in &rows {
        let cell = |v: Option<f64>| v.map_or_else(|| "-".to_string(), fmt_ns);
        let _ = writeln!(
            out,
            "  {:<12} {:<5} {:>9.0} {:>9} {:>9} {:>9} {:>9}",
            r.kind,
            r.class,
            r.count,
            cell(r.p50),
            cell(r.p95),
            cell(r.p99),
            cell(r.max),
        );
    }
    out
}

/// Scrapes `addr` once over the plain protocol and returns `(raw exposition
/// text, rendered table)`.
pub fn scrape(addr: &str) -> Result<(String, String), String> {
    let raw = parcsr_server::client::fetch(addr, "metrics")
        .map_err(|e| format!("watch: cannot scrape {addr}: {e}"))?;
    let expo =
        expo::parse(&raw).map_err(|e| format!("watch: invalid exposition from {addr}: {e}"))?;
    Ok((raw, render_table(&expo, addr)))
}

fn save(out: &Option<String>, raw: &str) -> Result<(), String> {
    if let Some(path) = out {
        std::fs::write(path, raw).map_err(|e| format!("watch: cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// Runs the watch command: `--once` scrapes a single time and returns the
/// table as the report; otherwise polls every `interval_ms`, redrawing the
/// terminal until the target goes away (the usual end: the watched run
/// finished). `--out` saves the latest raw scrape to a file either way.
pub fn run_watch(
    addr: &str,
    interval_ms: u64,
    once: bool,
    out: &Option<String>,
) -> Result<String, String> {
    if once {
        let (raw, table) = scrape(addr)?;
        save(out, &raw)?;
        return Ok(table);
    }
    loop {
        let (raw, table) = scrape(addr)?;
        save(out, &raw)?;
        // Clear screen + home, then the fresh table.
        print!("\x1b[2J\x1b[H{table}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_obs::metrics::{HistogramSummary, MetricsSnapshot, WindowSeries};

    fn live_expo() -> Exposition {
        let mut snap = MetricsSnapshot::default();
        snap.gauges.push(("query.win.epoch".to_string(), 9));
        snap.gauges
            .push(("query.win.duration_ns".to_string(), 250_000_000));
        for (kind, class, count, max) in [
            ("neighbors", "low", 4000, 900),
            ("neighbors", "hub", 120, 2_400_000),
            ("split", "mid", 800, 45_000),
        ] {
            snap.windows.push(WindowSeries {
                name: format!("query.win.{kind}.{class}"),
                kind,
                class,
                window: 9,
                summary: HistogramSummary {
                    count,
                    sum: count * 100,
                    max,
                    p50: max / 2,
                    p95: max,
                    p99: max,
                },
            });
        }
        expo::parse(&expo::render(&snap)).unwrap()
    }

    #[test]
    fn table_shows_every_cell_with_window_header() {
        let table = render_table(&live_expo(), "127.0.0.1:9184");
        assert!(table.starts_with("parcsr watch — 127.0.0.1:9184 — window 9 (250ms, 19680 qps)"));
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2 + 3, "header + columns + one line per cell");
        assert!(lines[1].contains("kind") && lines[1].contains("p99"));
        assert!(table.contains("neighbors    low        4000"));
        assert!(table.contains("2.40ms"), "hub max renders in ms");
        assert!(table.contains("45.0µs"), "mid max renders in µs");
        assert!(table.contains("450ns"), "low p50 renders in ns");
    }

    #[test]
    fn empty_exposition_renders_hint_not_panic() {
        let expo = expo::parse(&expo::render(&MetricsSnapshot::default())).unwrap();
        let table = render_table(&expo, "x:1");
        assert!(table.contains("no windowed series yet"));
    }
}
