//! `parcsr watch`: poll a running process's admin plane and render a
//! refreshing per-query-kind / per-degree-class latency table — the live
//! view of the `query.win.*` grid the closed-loop driver (and any future
//! server) publishes through `--admin-port` — plus per-cell p99 sparkline
//! columns built from the `history` endpoint's rotated-window ring, so a
//! queueing collapse is visible as it develops rather than only in the
//! final report.
//!
//! The rendering is a pure function from a parsed exposition to a string,
//! so the table and sparklines are unit-tested without sockets; only the
//! poll loop talks to the network (via [`parcsr_server::client`]).

use parcsr_obs::expo::{self, Exposition};
use std::fmt::Write as _;

/// The windowed summary family name the admin plane exposes.
const WIN_FAMILY: &str = "parcsr_query_win_ns";

/// The per-window history summary family the `history` endpoint exposes.
const HIST_FAMILY: &str = "parcsr_query_hist_ns";

/// Eight-level sparkline glyphs, lowest to highest.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Maps a value series to sparkline glyphs, normalized to the series max
/// (an all-zero series renders as a flat baseline).
fn spark(values: &[f64]) -> String {
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 || v <= 0.0 {
                SPARKS[0]
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                SPARKS[idx.min(7)]
            }
        })
        .collect()
}

fn gauge(expo: &Exposition, name: &str) -> Option<f64> {
    expo.samples
        .iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .map(|s| s.value)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// One `(kind, class)` row assembled from the summary family's samples.
struct Row {
    kind: String,
    class: String,
    count: f64,
    p50: Option<f64>,
    p95: Option<f64>,
    p99: Option<f64>,
    max: Option<f64>,
}

fn collect_rows(expo: &Exposition) -> Vec<Row> {
    let mut rows: Vec<Row> = Vec::new();
    let cell = |s: &expo::Sample| -> Option<(String, String)> {
        Some((s.label("kind")?.to_string(), s.label("class")?.to_string()))
    };
    // First pass establishes row order from the `_count` series (render
    // emits cells in slab-grid order, which groups kinds together).
    for s in &expo.samples {
        if s.name != format!("{WIN_FAMILY}_count") {
            continue;
        }
        if let Some((kind, class)) = cell(s) {
            rows.push(Row {
                kind,
                class,
                count: s.value,
                p50: None,
                p95: None,
                p99: None,
                max: None,
            });
        }
    }
    for s in &expo.samples {
        let Some((kind, class)) = cell(s) else {
            continue;
        };
        let Some(row) = rows.iter_mut().find(|r| r.kind == kind && r.class == class) else {
            continue;
        };
        if s.name == WIN_FAMILY {
            match s.label("quantile") {
                Some("0.5") => row.p50 = Some(s.value),
                Some("0.95") => row.p95 = Some(s.value),
                Some("0.99") => row.p99 = Some(s.value),
                _ => {}
            }
        } else if s.name == format!("{WIN_FAMILY}_max") {
            row.max = Some(s.value);
        }
    }
    rows
}

/// Renders the per-kind/per-class table for one scrape. Pure: feed it any
/// parsed exposition (tests use canned documents).
#[must_use]
pub fn render_table(expo: &Exposition, addr: &str) -> String {
    let mut out = String::new();
    let epoch = gauge(expo, "parcsr_query_win_epoch");
    let dur_ns = gauge(expo, "parcsr_query_win_duration_ns").unwrap_or(0.0);
    let rows = collect_rows(expo);
    let total: f64 = rows.iter().map(|r| r.count).sum();
    let qps = if dur_ns > 0.0 {
        total / (dur_ns / 1e9)
    } else {
        0.0
    };

    let _ = write!(out, "parcsr watch — {addr}");
    if let Some(epoch) = epoch {
        let _ = write!(out, " — window {epoch:.0}");
    }
    if dur_ns > 0.0 {
        let _ = write!(out, " ({:.0}ms, {qps:.0} qps)", dur_ns / 1e6);
    }
    out.push('\n');

    if rows.is_empty() {
        out.push_str("  (no windowed series yet — is the target recording?)\n");
        return out;
    }

    let _ = writeln!(
        out,
        "  {:<12} {:<5} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "kind", "class", "count", "p50", "p95", "p99", "max"
    );
    for r in &rows {
        let cell = |v: Option<f64>| v.map_or_else(|| "-".to_string(), fmt_ns);
        let _ = writeln!(
            out,
            "  {:<12} {:<5} {:>9.0} {:>9} {:>9} {:>9} {:>9}",
            r.kind,
            r.class,
            r.count,
            cell(r.p50),
            cell(r.p95),
            cell(r.p99),
            cell(r.max),
        );
    }
    out
}

/// Renders per-cell p99 sparkline columns from a parsed `history`
/// exposition: a throughput row plus one row per `(kind, class)` cell,
/// oldest window on the left, each row normalized to its own peak so hub
/// and low cells stay readable on one screen.
#[must_use]
pub fn render_sparklines(expo: &Exposition) -> String {
    let mut out = String::new();
    let window_of = |s: &expo::Sample| s.label("window").and_then(|v| v.parse::<u64>().ok());
    let mut wins: Vec<u64> = expo
        .samples
        .iter()
        .filter(|s| s.name == "parcsr_history_qps")
        .filter_map(window_of)
        .collect();
    wins.sort_unstable();
    wins.dedup();
    if wins.is_empty() {
        out.push_str("history: (no completed windows yet)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "history — {} windows ({}..{}), p99 per cell (left = oldest):",
        wins.len(),
        wins[0],
        wins[wins.len() - 1],
    );
    let series = |pred: &dyn Fn(&expo::Sample) -> bool| -> Vec<f64> {
        wins.iter()
            .map(|&w| {
                expo.samples
                    .iter()
                    .find(|s| window_of(s) == Some(w) && pred(s))
                    .map_or(0.0, |s| s.value)
            })
            .collect()
    };
    let qps = series(&|s| s.name == "parcsr_history_qps");
    let _ = writeln!(
        out,
        "  {:<12} {:<5} {}  peak {:.0} qps",
        "throughput",
        "",
        spark(&qps),
        qps.iter().copied().fold(0.0_f64, f64::max),
    );
    // Cell rows in first-seen order (render_history emits grid order).
    let mut cells: Vec<(String, String)> = Vec::new();
    for s in &expo.samples {
        if s.name != HIST_FAMILY || s.label("quantile") != Some("0.99") {
            continue;
        }
        if let (Some(kind), Some(class)) = (s.label("kind"), s.label("class")) {
            if !cells.iter().any(|(k, c)| k == kind && c == class) {
                cells.push((kind.to_string(), class.to_string()));
            }
        }
    }
    for (kind, class) in &cells {
        let vals = series(&|s| {
            s.name == HIST_FAMILY
                && s.label("quantile") == Some("0.99")
                && s.label("kind") == Some(kind)
                && s.label("class") == Some(class)
        });
        let peak = vals.iter().copied().fold(0.0_f64, f64::max);
        let _ = writeln!(
            out,
            "  {:<12} {:<5} {}  peak {}",
            kind,
            class,
            spark(&vals),
            fmt_ns(peak),
        );
    }
    out
}

/// Scrapes `addr` once over the plain protocol and returns `(raw exposition
/// text, rendered table)`.
pub fn scrape(addr: &str) -> Result<(String, String), String> {
    let raw = parcsr_server::client::fetch(addr, "metrics")
        .map_err(|e| format!("watch: cannot scrape {addr}: {e}"))?;
    let expo =
        expo::parse(&raw).map_err(|e| format!("watch: invalid exposition from {addr}: {e}"))?;
    Ok((raw, render_table(&expo, addr)))
}

/// Scrapes `addr`'s `history` endpoint and returns `(raw exposition text,
/// rendered sparkline panel)`.
pub fn scrape_history(addr: &str) -> Result<(String, String), String> {
    let raw = parcsr_server::client::fetch(addr, "history")
        .map_err(|e| format!("watch: cannot scrape history from {addr}: {e}"))?;
    let expo = expo::parse(&raw)
        .map_err(|e| format!("watch: invalid history exposition from {addr}: {e}"))?;
    let panel = render_sparklines(&expo);
    Ok((raw, panel))
}

fn save(out: &Option<String>, raw: &str, history_raw: Option<&str>) -> Result<(), String> {
    if let Some(path) = out {
        std::fs::write(path, raw).map_err(|e| format!("watch: cannot write {path}: {e}"))?;
        if let Some(history) = history_raw {
            let hpath = format!("{path}.history");
            std::fs::write(&hpath, history)
                .map_err(|e| format!("watch: cannot write {hpath}: {e}"))?;
        }
    }
    Ok(())
}

/// Runs the watch command: `--once` scrapes a single time and returns the
/// table (plus the history sparkline panel) as the report; otherwise polls
/// every `interval_ms`, redrawing the terminal until the target goes away
/// (the usual end: the watched run finished). `--out FILE` saves the latest
/// raw `/metrics` scrape to FILE and the raw `history` scrape to
/// FILE.history either way. A target without the `history` endpoint still
/// renders the table — the panel degrades to a one-line note.
pub fn run_watch(
    addr: &str,
    interval_ms: u64,
    once: bool,
    out: &Option<String>,
) -> Result<String, String> {
    let compose = |table: String, history: &Result<(String, String), String>| match history {
        Ok((_, panel)) => format!("{table}{panel}"),
        Err(e) => format!("{table}history: unavailable ({e})\n"),
    };
    if once {
        let (raw, table) = scrape(addr)?;
        let history = scrape_history(addr);
        save(out, &raw, history.as_ref().ok().map(|(r, _)| r.as_str()))?;
        return Ok(compose(table, &history));
    }
    loop {
        let (raw, table) = scrape(addr)?;
        let history = scrape_history(addr);
        save(out, &raw, history.as_ref().ok().map(|(r, _)| r.as_str()))?;
        // Clear screen + home, then the fresh table.
        print!("\x1b[2J\x1b[H{}", compose(table, &history));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parcsr_obs::metrics::{HistogramSummary, MetricsSnapshot, WindowSeries};

    fn live_expo() -> Exposition {
        let mut snap = MetricsSnapshot::default();
        snap.gauges.push(("query.win.epoch".to_string(), 9));
        snap.gauges
            .push(("query.win.duration_ns".to_string(), 250_000_000));
        for (kind, class, count, max) in [
            ("neighbors", "low", 4000, 900),
            ("neighbors", "hub", 120, 2_400_000),
            ("split", "mid", 800, 45_000),
        ] {
            snap.windows.push(WindowSeries {
                name: format!("query.win.{kind}.{class}"),
                kind,
                class,
                window: 9,
                summary: HistogramSummary {
                    count,
                    sum: count * 100,
                    max,
                    p50: max / 2,
                    p95: max,
                    p99: max,
                },
            });
        }
        expo::parse(&expo::render(&snap)).unwrap()
    }

    #[test]
    fn table_shows_every_cell_with_window_header() {
        let table = render_table(&live_expo(), "127.0.0.1:9184");
        assert!(table.starts_with("parcsr watch — 127.0.0.1:9184 — window 9 (250ms, 19680 qps)"));
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2 + 3, "header + columns + one line per cell");
        assert!(lines[1].contains("kind") && lines[1].contains("p99"));
        assert!(table.contains("neighbors    low        4000"));
        assert!(table.contains("2.40ms"), "hub max renders in ms");
        assert!(table.contains("45.0µs"), "mid max renders in µs");
        assert!(table.contains("450ns"), "low p50 renders in ns");
    }

    #[test]
    fn empty_exposition_renders_hint_not_panic() {
        let expo = expo::parse(&expo::render(&MetricsSnapshot::default())).unwrap();
        let table = render_table(&expo, "x:1");
        assert!(table.contains("no windowed series yet"));
    }

    fn history_expo(p99s: &[u64]) -> Exposition {
        use parcsr_obs::serve::{DegreeClass, HistoryWindow, QueryKind, WindowCell};
        let windows: Vec<HistoryWindow> = p99s
            .iter()
            .enumerate()
            .map(|(i, &p99)| HistoryWindow {
                window: i as u64,
                end_ns: (i as u64 + 1) * 250_000_000,
                dur_ns: 250_000_000,
                queries: 1000,
                qps: 4000.0,
                cells: vec![WindowCell {
                    kind: QueryKind::Neighbors,
                    class: DegreeClass::Hub,
                    summary: HistogramSummary {
                        count: 1000,
                        sum: p99 * 100,
                        max: p99,
                        p50: p99 / 2,
                        p95: p99,
                        p99,
                    },
                }],
            })
            .collect();
        expo::parse(&expo::render_history(&windows)).unwrap()
    }

    #[test]
    fn sparklines_normalize_per_cell_and_keep_window_order() {
        let panel = render_sparklines(&history_expo(&[100, 100, 100, 800]));
        assert!(panel.starts_with("history — 4 windows (0..3)"));
        // The hub cell row: three low windows then the collapse spike.
        let hub = panel
            .lines()
            .find(|l| l.contains("neighbors") && l.contains("hub"))
            .expect("hub cell row");
        assert!(hub.contains("▂▂▂█"), "row was: {hub}");
        assert!(hub.contains("peak 800ns"));
        // Flat throughput renders at full height everywhere (max == value).
        let qps = panel
            .lines()
            .find(|l| l.contains("throughput"))
            .expect("throughput row");
        assert!(qps.contains("████"));
        assert!(qps.contains("peak 4000 qps"));
    }

    #[test]
    fn empty_history_renders_hint_not_panic() {
        let panel = render_sparklines(&expo::parse(&expo::render_history(&[])).unwrap());
        assert!(panel.contains("no completed windows yet"));
    }
}
