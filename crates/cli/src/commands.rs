//! Command execution: each subcommand is a pure function from a parsed
//! [`Command`] to a report string.

use std::fmt;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::time::Instant;

use parcsr::query::{edges_exist_batch_binary_with_chunking, neighbors_batch_with_chunking};
use parcsr::{BitPackedCsr, ChunkPolicy, CsrBuilder, PackedCsrMode};
use parcsr_graph::gen::{barabasi_albert, erdos_renyi, rmat, BaParams, ErParams, RmatParams};
use parcsr_graph::{io as gio, DegreeStats, EdgeList};

use crate::parse::{Command, Model};

/// Execution failures (I/O, parse, semantic).
#[derive(Debug)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Executes a command, returning its report.
pub fn execute(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Generate {
            model,
            nodes,
            edges,
            seed,
            out,
        } => generate(*model, *nodes, *edges, *seed, out),
        Command::Compress {
            input,
            out,
            gap,
            procs,
            chunk_policy,
        } => compress(input, out, *gap, resolve_procs(*procs), *chunk_policy),
        Command::Stats { input } => stats(input),
        Command::Info { input } => info(input),
        Command::Watch {
            addr,
            interval_ms,
            once,
            out,
        } => crate::watch::run_watch(addr, *interval_ms, *once, out).map_err(err),
        Command::Query {
            input,
            neighbors,
            edges,
            procs,
            chunk_policy,
        } => query(
            input,
            neighbors,
            edges,
            resolve_procs(*procs),
            *chunk_policy,
        ),
        Command::TemporalCompress {
            input,
            out,
            gap,
            procs,
            chunk_policy,
        } => temporal_compress(input, out, *gap, resolve_procs(*procs), *chunk_policy),
        Command::TemporalQuery {
            input,
            frame,
            edges,
            neighbors,
            count,
        } => temporal_query(input, *frame, edges, neighbors, *count),
    }
}

fn temporal_compress(
    input: &str,
    out: &str,
    gap: bool,
    procs: usize,
    chunk_policy: ChunkPolicy,
) -> Result<String, CliError> {
    let events = gio::read_temporal_edge_list_file(input)
        .map_err(|e| err(format!("reading {input}: {e}")))?;
    let mode = if gap {
        parcsr_temporal::FrameMode::Gap
    } else {
        parcsr_temporal::FrameMode::Random
    };
    let t = Instant::now();
    let tcsr = parcsr_temporal::TcsrBuilder::new()
        .processors(procs)
        .frame_mode(mode)
        .chunk_policy(chunk_policy)
        .build(&events);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    let file = File::create(out).map_err(|e| err(format!("creating {out}: {e}")))?;
    let mut writer = BufWriter::new(file);
    tcsr.write_to(&mut writer)
        .map_err(|e| err(format!("writing {out}: {e}")))?;
    Ok(format!(
        "compressed {} events / {} frames over {} nodes in {ms:.1} ms ({} mode, {} B packed) -> {out}",
        events.num_events(),
        tcsr.num_frames(),
        tcsr.num_nodes(),
        mode.name(),
        tcsr.packed_bytes()
    ))
}

fn temporal_query(
    input: &str,
    frame: u32,
    edges: &[(u32, u32)],
    neighbors: &[u32],
    count: bool,
) -> Result<String, CliError> {
    let file = File::open(input).map_err(|e| err(format!("opening {input}: {e}")))?;
    let tcsr = parcsr_temporal::Tcsr::read_from(&mut BufReader::new(file))
        .map_err(|e| err(format!("loading {input}: {e}")))?;
    if frame as usize >= tcsr.num_frames() {
        return Err(err(format!(
            "frame {frame} out of range ({} frames)",
            tcsr.num_frames()
        )));
    }
    let mut report = String::new();
    for &(u, v) in edges {
        let _ = writeln!(
            report,
            "edge ({u}, {v}) at T{frame}: {}",
            tcsr.edge_active_at(u, v, frame)
        );
    }
    for &u in neighbors {
        let _ = writeln!(
            report,
            "neighbors({u}) at T{frame}: {:?}",
            tcsr.neighbors_at(u, frame)
        );
    }
    if count {
        let _ = writeln!(
            report,
            "active edges at T{frame}: {}",
            tcsr.active_edge_count_at(frame)
        );
    }
    Ok(report.trim_end().to_string())
}

fn resolve_procs(procs: usize) -> usize {
    if procs == 0 {
        rayon::current_num_threads()
    } else {
        procs
    }
}

fn generate(
    model: Model,
    nodes: usize,
    edges: usize,
    seed: u64,
    out: &str,
) -> Result<String, CliError> {
    let graph: EdgeList = match model {
        Model::Rmat => rmat(RmatParams::new(nodes, edges, seed)),
        Model::ErdosRenyi => erdos_renyi(ErParams::new(nodes, edges, seed)),
        Model::BarabasiAlbert => barabasi_albert(BaParams::new(nodes, edges, seed)),
    };
    gio::write_edge_list_file(&graph, out).map_err(|e| err(format!("writing {out}: {e}")))?;
    Ok(format!(
        "generated {} nodes / {} edges ({:?}, seed {seed}) -> {out}",
        graph.num_nodes(),
        graph.num_edges(),
        model
    ))
}

fn compress(
    input: &str,
    out: &str,
    gap: bool,
    procs: usize,
    chunk_policy: ChunkPolicy,
) -> Result<String, CliError> {
    let graph =
        gio::read_edge_list_file(input).map_err(|e| err(format!("reading {input}: {e}")))?;
    let mode = if gap {
        PackedCsrMode::Gap
    } else {
        PackedCsrMode::Raw
    };

    let t = Instant::now();
    let (csr, timings) = CsrBuilder::new()
        .processors(procs)
        .chunk_policy(chunk_policy)
        .build_timed(&graph);
    let packed = BitPackedCsr::from_csr_with_chunking(&csr, mode, procs, chunk_policy);
    let total_ms = t.elapsed().as_secs_f64() * 1e3;

    let file = File::create(out).map_err(|e| err(format!("creating {out}: {e}")))?;
    let mut writer = BufWriter::new(file);
    packed
        .write_to(&mut writer)
        .map_err(|e| err(format!("writing {out}: {e}")))?;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "compressed {} nodes / {} edges in {total_ms:.1} ms with {procs} processors",
        csr.num_nodes(),
        csr.num_edges()
    );
    let _ = writeln!(
        report,
        "  stages: sort {:.1} ms, degrees {:.1} ms, scan {:.1} ms, fill {:.1} ms",
        timings.sort_ms, timings.degree_ms, timings.scan_ms, timings.fill_ms
    );
    let _ = writeln!(
        report,
        "  sizes: edge list {} B -> packed CSR {} B ({} mode, {}-bit columns)",
        graph.binary_bytes(),
        packed.packed_bytes(),
        mode.name(),
        packed.column_width()
    );
    let _ = write!(report, "  wrote {out}");
    Ok(report)
}

fn stats(input: &str) -> Result<String, CliError> {
    let graph =
        gio::read_edge_list_file(input).map_err(|e| err(format!("reading {input}: {e}")))?;
    let s = DegreeStats::of(&graph);
    Ok(format!(
        "{input}: {} nodes, {} edges\n  max degree {}, mean degree {:.2}, isolated {}, gini {:.3}",
        s.num_nodes, s.num_edges, s.max_degree, s.mean_degree, s.isolated, s.gini
    ))
}

fn load_pcsr(input: &str) -> Result<BitPackedCsr, CliError> {
    let file = File::open(input).map_err(|e| err(format!("opening {input}: {e}")))?;
    BitPackedCsr::read_from(&mut BufReader::new(file))
        .map_err(|e| err(format!("loading {input}: {e}")))
}

fn info(input: &str) -> Result<String, CliError> {
    let packed = load_pcsr(input)?;
    Ok(format!(
        "{input}: {} nodes, {} edges, {} mode\n  columns {}-bit, offsets {}-bit, {} bytes packed",
        packed.num_nodes(),
        packed.num_edges(),
        packed.mode().name(),
        packed.column_width(),
        packed.offset_width(),
        packed.packed_bytes()
    ))
}

fn query(
    input: &str,
    neighbors: &[u32],
    edges: &[(u32, u32)],
    procs: usize,
    chunk_policy: ChunkPolicy,
) -> Result<String, CliError> {
    let packed = load_pcsr(input)?;
    let n = packed.num_nodes() as u32;
    for &u in neighbors
        .iter()
        .chain(edges.iter().flat_map(|(u, v)| [u, v]))
    {
        if u >= n {
            return Err(err(format!("node {u} out of range ({n} nodes)")));
        }
    }

    let mut report = String::new();
    if !neighbors.is_empty() {
        let rows = neighbors_batch_with_chunking(&packed, neighbors, procs, chunk_policy);
        for (u, row) in neighbors.iter().zip(rows) {
            let preview: Vec<u32> = row.iter().copied().take(16).collect();
            let _ = writeln!(
                report,
                "neighbors({u}) [{}]: {preview:?}{}",
                row.len(),
                if row.len() > 16 { " …" } else { "" }
            );
        }
    }
    if !edges.is_empty() {
        let answers = edges_exist_batch_binary_with_chunking(&packed, edges, procs, chunk_policy);
        for (&(u, v), exists) in edges.iter().zip(answers) {
            let _ = writeln!(report, "edge ({u}, {v}): {exists}");
        }
    }
    Ok(report.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Command;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("parcsr-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_compress_info_query_pipeline() {
        let txt = tmp("pipeline.txt");
        let pcsr = tmp("pipeline.pcsr");

        let report = execute(&Command::Generate {
            model: Model::Rmat,
            nodes: 256,
            edges: 2_000,
            seed: 9,
            out: txt.clone(),
        })
        .unwrap();
        assert!(report.contains("2000 edges"), "{report}");

        let report = execute(&Command::Compress {
            input: txt.clone(),
            out: pcsr.clone(),
            gap: true,
            procs: 2,
            chunk_policy: ChunkPolicy::Edges,
        })
        .unwrap();
        assert!(report.contains("packed CSR"), "{report}");

        let report = execute(&Command::Info {
            input: pcsr.clone(),
        })
        .unwrap();
        assert!(report.contains("gap mode"), "{report}");
        assert!(report.contains("2000 edges"), "{report}");

        let report = execute(&Command::Query {
            input: pcsr.clone(),
            neighbors: vec![0, 1],
            edges: vec![(0, 1)],
            procs: 2,
            chunk_policy: ChunkPolicy::Edges,
        })
        .unwrap();
        assert!(report.contains("neighbors(0)"), "{report}");
        assert!(report.contains("edge (0, 1):"), "{report}");

        let report = execute(&Command::Stats { input: txt.clone() }).unwrap();
        assert!(report.contains("gini"), "{report}");
    }

    #[test]
    fn query_rejects_out_of_range_nodes() {
        let txt = tmp("range.txt");
        let pcsr = tmp("range.pcsr");
        execute(&Command::Generate {
            model: Model::ErdosRenyi,
            nodes: 10,
            edges: 20,
            seed: 1,
            out: txt.clone(),
        })
        .unwrap();
        execute(&Command::Compress {
            input: txt,
            out: pcsr.clone(),
            gap: false,
            procs: 1,
            chunk_policy: ChunkPolicy::Rows,
        })
        .unwrap();
        let e = execute(&Command::Query {
            input: pcsr,
            neighbors: vec![500],
            edges: vec![],
            procs: 1,
            chunk_policy: ChunkPolicy::Edges,
        })
        .unwrap_err();
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn temporal_pipeline_end_to_end() {
        use parcsr_graph::gen::{temporal_toggles, TemporalParams};
        let events = temporal_toggles(TemporalParams::new(64, 600, 6, 3));
        let txt = tmp("events.txt");
        {
            let file = std::fs::File::create(&txt).unwrap();
            parcsr_graph::io::write_temporal_edge_list(&events, file).unwrap();
        }
        let tcsr_path = tmp("events.tcsr");
        let report = execute(&Command::TemporalCompress {
            input: txt,
            out: tcsr_path.clone(),
            gap: true,
            procs: 2,
            chunk_policy: ChunkPolicy::Edges,
        })
        .unwrap();
        assert!(report.contains("gap mode"), "{report}");

        let snap = events.snapshot_at(3);
        let (u, v) = snap[0];
        let report = execute(&Command::TemporalQuery {
            input: tcsr_path,
            frame: 3,
            edges: vec![(u, v)],
            neighbors: vec![u],
            count: true,
        })
        .unwrap();
        assert!(
            report.contains(&format!("edge ({u}, {v}) at T3: true")),
            "{report}"
        );
        assert!(
            report.contains(&format!("active edges at T3: {}", snap.len())),
            "{report}"
        );
    }

    #[test]
    fn temporal_query_frame_out_of_range() {
        use parcsr_graph::gen::{temporal_toggles, TemporalParams};
        let events = temporal_toggles(TemporalParams::new(16, 100, 3, 1));
        let txt = tmp("range-events.txt");
        {
            let file = std::fs::File::create(&txt).unwrap();
            parcsr_graph::io::write_temporal_edge_list(&events, file).unwrap();
        }
        let out = tmp("range-events.tcsr");
        execute(&Command::TemporalCompress {
            input: txt,
            out: out.clone(),
            gap: false,
            procs: 1,
            chunk_policy: ChunkPolicy::Rows,
        })
        .unwrap();
        let e = execute(&Command::TemporalQuery {
            input: out,
            frame: 999,
            edges: vec![],
            neighbors: vec![],
            count: true,
        })
        .unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
    }

    #[test]
    fn missing_files_error_cleanly() {
        let e = execute(&Command::Stats {
            input: "/nonexistent/g.txt".into(),
        })
        .unwrap_err();
        assert!(e.to_string().contains("reading"));
        let e = execute(&Command::Info {
            input: "/nonexistent/g.pcsr".into(),
        })
        .unwrap_err();
        assert!(e.to_string().contains("opening"));
    }

    #[test]
    fn info_rejects_non_pcsr_files() {
        let txt = tmp("not-a-pcsr.txt");
        std::fs::write(&txt, "0 1\n").unwrap();
        let e = execute(&Command::Info { input: txt }).unwrap_err();
        assert!(e.to_string().contains("loading"), "{e}");
    }
}
