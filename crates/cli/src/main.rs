//! `parcsr` binary entry point: parse, execute, print.

fn main() {
    match parcsr_cli::run(std::env::args().skip(1)) {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
