//! `parcsr` binary entry point: parse, execute, print.

// Counting allocator behind --mem-metrics; registered only in obs builds,
// so default builds keep the plain system allocator.
#[cfg(feature = "obs")]
#[global_allocator]
static ALLOC: parcsr_obs::mem::CountingAlloc = parcsr_obs::mem::CountingAlloc::new();

fn main() {
    match parcsr_cli::run(std::env::args().skip(1)) {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
