#![warn(missing_docs)]

//! `parcsr` command-line tool: the operational wrapper around the library —
//! generate a synthetic social network, compress a SNAP file into the packed
//! CSR format, inspect the result, and query it, all without writing Rust.
//!
//! ```text
//! parcsr generate --model rmat --nodes 65536 --edges 1048576 --out g.txt
//! parcsr stats g.txt
//! parcsr compress g.txt --out g.pcsr --mode gap
//! parcsr info g.pcsr
//! parcsr query g.pcsr --neighbors 0,1,2
//! parcsr query g.pcsr --edge 0,42
//! ```
//!
//! Every command is a pure function from arguments to a report string, so
//! the whole surface is unit-testable; `main` only prints.

pub mod commands;
pub mod parse;

pub use commands::execute;
pub use parse::{Command, ParseError};

/// Parses and executes an argument list, returning the report to print.
pub fn run<I>(args: I) -> Result<String, String>
where
    I: IntoIterator<Item = String>,
{
    let command = Command::parse(args).map_err(|e| e.to_string())?;
    execute(&command).map_err(|e| e.to_string())
}
