#![warn(missing_docs)]

//! `parcsr` command-line tool: the operational wrapper around the library —
//! generate a synthetic social network, compress a SNAP file into the packed
//! CSR format, inspect the result, and query it, all without writing Rust.
//!
//! ```text
//! parcsr generate --model rmat --nodes 65536 --edges 1048576 --out g.txt
//! parcsr stats g.txt
//! parcsr compress g.txt --out g.pcsr --mode gap
//! parcsr info g.pcsr
//! parcsr query g.pcsr --neighbors 0,1,2
//! parcsr query g.pcsr --edge 0,42
//! ```
//!
//! Every command is a pure function from arguments to a report string, so
//! the whole surface is unit-testable; `main` only prints.

pub mod commands;
pub mod parse;
pub mod watch;

pub use commands::execute;
pub use parse::{Command, ObsOptions, ParseError};

/// Parses and executes an argument list, returning the report to print.
///
/// The global `--trace FILE` / `--metrics` / `--trace-sample N` /
/// `--mem-metrics` / `--mem-sample N` switches (valid anywhere on the
/// command line, in any order) wrap the run in observability collection;
/// they need a binary built with the `obs` feature to record anything.
pub fn run<I>(args: I) -> Result<String, String>
where
    I: IntoIterator<Item = String>,
{
    let (obs, rest) = ObsOptions::extract(args).map_err(|e| e.to_string())?;
    if obs.active() {
        if !parcsr_obs::compiled() {
            eprintln!(
                "warning: --trace/--metrics/--mem-metrics/--mem-sample need a build with the \
                 obs feature (cargo run -p parcsr-cli --features obs ...); nothing will be \
                 recorded"
            );
        }
        let sample = obs.trace_sample.or_else(|| {
            std::env::var("PARCSR_TRACE_SAMPLE")
                .ok()
                .and_then(|s| s.trim().parse().ok())
        });
        parcsr_obs::set_trace_sample(sample.unwrap_or(1));
        let mem_sample = obs.mem_sample.or_else(|| {
            std::env::var("PARCSR_MEM_SAMPLE")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
        });
        parcsr_obs::mem::set_sample_period(mem_sample.unwrap_or(0));
        // Intra-span peak sampling observes the live-byte counter, so it
        // implies memory accounting even without --mem-metrics.
        parcsr_obs::mem::set_enabled(obs.mem_metrics || mem_sample.is_some());
        parcsr_obs::set_enabled(true);
    }
    // Live introspection: serve metrics/stats/health on 127.0.0.1:<port>
    // while the command runs. A failed spawn (port taken, or the admin
    // plane not compiled in) degrades to a warning.
    let mut admin = None;
    if let Some(port) = obs.admin_port {
        match parcsr_server::admin::spawn(port) {
            Ok(server) => {
                // A live admin plane implies live metrics, even when no
                // collection switch was given.
                parcsr_obs::set_enabled(true);
                eprintln!("admin: listening on {}", server.local_addr());
                admin = Some(server);
            }
            Err(e) => eprintln!("admin: --admin-port unavailable: {e}"),
        }
    }
    let command = Command::parse(rest).map_err(|e| e.to_string())?;
    let result = execute(&command).map_err(|e| e.to_string());
    if let Some(mut server) = admin.take() {
        server.shutdown();
    }
    if obs.active() {
        parcsr_obs::mem::publish_gauges();
        parcsr_obs::set_enabled(false);
        let spans = parcsr_obs::drain();
        let metrics = parcsr_obs::metrics::snapshot();
        let mem = parcsr_obs::mem::snapshot();
        if let Some(path) = &obs.trace {
            match parcsr_obs::export::write_chrome_trace(
                std::path::Path::new(path),
                &spans,
                &metrics,
                mem,
                &parcsr_obs::serve::drain_window_log(),
                &parcsr_obs::serve::drain_phase_log(),
                &parcsr_obs::serve::drain_exemplar_log(),
            ) {
                Ok(()) => eprintln!("trace: wrote {} spans to {path}", spans.len()),
                Err(e) => eprintln!("trace: failed to write {path}: {e}"),
            }
        }
        if obs.metrics || obs.mem_metrics {
            eprint!(
                "{}",
                parcsr_obs::export::summary_table(&spans, &metrics, mem)
            );
        }
    }
    result
}
