//! Bit adjacency matrix: `n²` bits, O(1) edge queries.
//!
//! The structure the introduction rules out at scale (Friendster at 65M
//! nodes would need petabytes as a dense matrix) but the natural correctness
//! oracle and query-speed ceiling for small graphs.

use parcsr_graph::{EdgeList, NodeId};

use crate::GraphStore;

/// Dense boolean adjacency matrix packed one bit per cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyMatrix {
    n: usize,
    num_edges: usize,
    bits: Vec<u64>,
}

impl AdjacencyMatrix {
    /// Builds the matrix from an edge list. Duplicate edges collapse (a bit
    /// is a bit); `num_edges` reports the number of *set bits*.
    pub fn from_edge_list(graph: &EdgeList) -> Self {
        let n = graph.num_nodes();
        let words = (n * n).div_ceil(64);
        let mut bits = vec![0u64; words];
        for &(u, v) in graph.edges() {
            let idx = u as usize * n + v as usize;
            bits[idx / 64] |= 1 << (idx % 64);
        }
        let num_edges = bits.iter().map(|w| w.count_ones() as usize).sum();
        AdjacencyMatrix { n, num_edges, bits }
    }

    #[inline]
    fn bit(&self, u: usize, v: usize) -> bool {
        let idx = u * self.n + v;
        (self.bits[idx / 64] >> (idx % 64)) & 1 == 1
    }
}

impl GraphStore for AdjacencyMatrix {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        assert!(u < self.n, "node {u} out of range");
        let mut row = Vec::new();
        self.row_into(u as NodeId, &mut row);
        row.len()
    }

    fn row_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        let u = u as usize;
        assert!(u < self.n, "node {u} out of range");
        out.clear();
        for v in 0..self.n {
            if self.bit(u, v) {
                out.push(v as NodeId);
            }
        }
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (u, v) = (u as usize, v as usize);
        assert!(u < self.n && v < self.n, "edge ({u}, {v}) out of range");
        self.bit(u, v)
    }

    fn heap_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AdjacencyMatrix {
        AdjacencyMatrix::from_edge_list(&EdgeList::new(4, vec![(0, 1), (1, 2), (3, 3), (0, 1)]))
    }

    #[test]
    fn membership() {
        let m = sample();
        assert!(m.has_edge(0, 1));
        assert!(m.has_edge(3, 3));
        assert!(!m.has_edge(1, 0));
        assert!(!m.has_edge(2, 2));
    }

    #[test]
    fn duplicates_collapse() {
        assert_eq!(sample().num_edges(), 3);
    }

    #[test]
    fn rows_are_sorted() {
        let m = AdjacencyMatrix::from_edge_list(&EdgeList::new(5, vec![(2, 4), (2, 0), (2, 3)]));
        let mut row = Vec::new();
        m.row_into(2, &mut row);
        assert_eq!(row, [0, 3, 4]);
        assert_eq!(m.degree(2), 3);
    }

    #[test]
    fn quadratic_memory() {
        let g = EdgeList::new(1024, vec![(0, 1)]);
        let m = AdjacencyMatrix::from_edge_list(&g);
        // 1024² bits = 128 KiB regardless of the single edge.
        assert_eq!(m.heap_bytes(), 1024 * 1024 / 8);
    }

    #[test]
    fn empty_graph() {
        let m = AdjacencyMatrix::from_edge_list(&EdgeList::new(0, vec![]));
        assert_eq!(m.num_nodes(), 0);
        assert_eq!(m.num_edges(), 0);
        assert_eq!(m.heap_bytes(), 0);
    }

    #[test]
    fn bit_layout_crosses_words() {
        // n = 9 makes rows straddle 64-bit word boundaries.
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, (i * 2) % 9)).collect();
        let m = AdjacencyMatrix::from_edge_list(&EdgeList::new(9, edges.clone()));
        for &(u, v) in &edges {
            assert!(m.has_edge(u, v), "({u}, {v})");
        }
        assert_eq!(m.num_edges(), edges.len());
    }
}
