//! Adjacency list: one owned, sorted neighbor vector per node.
//!
//! The familiar structure CSR flattens. Functionally identical query results,
//! but per-row heap allocations cost pointer indirection and allocator
//! overhead — the benches measure both against the CSR family.

use rayon::prelude::*;

use parcsr_graph::{EdgeList, NodeId};

use crate::GraphStore;

/// `Vec<Vec<NodeId>>` with sorted rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyList {
    rows: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl AdjacencyList {
    /// Builds from an edge list (duplicates preserved, rows sorted).
    pub fn from_edge_list(graph: &EdgeList) -> Self {
        let mut rows: Vec<Vec<NodeId>> = vec![Vec::new(); graph.num_nodes()];
        for &(u, v) in graph.edges() {
            rows[u as usize].push(v);
        }
        rows.par_iter_mut().for_each(|r| r.sort_unstable());
        AdjacencyList {
            rows,
            num_edges: graph.num_edges(),
        }
    }

    /// Direct slice access to a row (what the flattened CSR also offers).
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.rows[u as usize]
    }
}

impl GraphStore for AdjacencyList {
    fn num_nodes(&self) -> usize {
        self.rows.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, u: NodeId) -> usize {
        self.rows[u as usize].len()
    }

    fn row_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(&self.rows[u as usize]);
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.rows[u as usize].binary_search(&v).is_ok()
    }

    fn heap_bytes(&self) -> usize {
        // Outer vector of (ptr, len, cap) triples plus each row's buffer.
        self.rows.len() * std::mem::size_of::<Vec<NodeId>>()
            + self
                .rows
                .iter()
                .map(|r| r.capacity() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AdjacencyList {
        AdjacencyList::from_edge_list(&EdgeList::new(4, vec![(0, 3), (0, 1), (2, 0), (0, 1)]))
    }

    #[test]
    fn rows_sorted_with_duplicates() {
        let a = sample();
        assert_eq!(a.neighbors(0), [1, 1, 3]);
        assert_eq!(a.neighbors(2), [0]);
        assert!(a.neighbors(3).is_empty());
        assert_eq!(a.num_edges(), 4);
    }

    #[test]
    fn queries() {
        let a = sample();
        assert!(a.has_edge(0, 3));
        assert!(!a.has_edge(3, 0));
        assert_eq!(a.degree(0), 3);
        let mut row = Vec::new();
        a.row_into(0, &mut row);
        assert_eq!(row, [1, 1, 3]);
    }

    #[test]
    fn heap_bytes_counts_rows() {
        let a = sample();
        // 4 Vec headers (24 bytes each on 64-bit) + at least 4 u32 elements.
        assert!(a.heap_bytes() >= 4 * 24 + 4 * 4);
    }

    #[test]
    fn empty() {
        let a = AdjacencyList::from_edge_list(&EdgeList::new(0, vec![]));
        assert_eq!(a.num_nodes(), 0);
        assert_eq!(a.heap_bytes(), 0);
    }
}
