#![warn(missing_docs)]

//! Baseline graph stores the paper compares against (Sections I, II, VI):
//! the adjacency matrix, the adjacency list, and the flat edge list. All
//! three expose the same query surface as the CSR structures so the benches
//! can measure identical workloads, and all three report their memory
//! footprint for the size columns of Table II.
//!
//! * [`AdjacencyMatrix`] — a bit matrix (`n²` bits). The representation the
//!   introduction's Friendster example shows to be hopeless at scale
//!   (O(1) edge queries, quadratic memory).
//! * [`AdjacencyList`] — `Vec<Vec<NodeId>>` with sorted rows. The common
//!   in-memory structure; per-row allocations cost pointer-chasing and heap
//!   overhead that CSR avoids.
//! * [`EdgeListStore`] — the sorted flat edge list queried by binary search.
//!   Cheapest to build (the paper's fourth column), slowest to query per
//!   neighborhood.

pub mod adjacency_list;
pub mod adjacency_matrix;
pub mod edge_list_store;

pub use adjacency_list::AdjacencyList;
pub use adjacency_matrix::AdjacencyMatrix;
pub use edge_list_store::EdgeListStore;

use parcsr_graph::NodeId;

/// The query surface shared by every baseline, mirroring the core crate's
/// `NeighborSource` so benches can template over both.
pub trait GraphStore {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;
    /// Number of directed edges.
    fn num_edges(&self) -> usize;
    /// Out-degree of `u`.
    fn degree(&self, u: NodeId) -> usize;
    /// Sorted neighbor row of `u`, decoded into `out`.
    fn row_into(&self, u: NodeId, out: &mut Vec<NodeId>);
    /// Edge existence.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;
    /// Heap bytes the structure occupies.
    fn heap_bytes(&self) -> usize;
}
