//! Flat sorted edge list queried by binary search.
//!
//! Table II's fourth column stores graphs as edge lists because that is the
//! distribution format; this store shows what querying that format directly
//! costs ("the edge list consumes more time in querying compared to CSR",
//! Section VI).

use parcsr_graph::{Edge, EdgeList, NodeId};

use crate::GraphStore;

/// A `(source, target)`-sorted flat edge array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeListStore {
    num_nodes: usize,
    edges: Vec<Edge>,
}

impl EdgeListStore {
    /// Builds from an edge list (sorts a copy).
    pub fn from_edge_list(graph: &EdgeList) -> Self {
        let sorted = graph.sorted_by_source();
        EdgeListStore {
            num_nodes: sorted.num_nodes(),
            edges: sorted.into_edges(),
        }
    }

    /// The row range of `u` found by two binary searches — `O(log m)` before
    /// any neighbor is produced, versus CSR's `O(1)` offset lookup. This gap
    /// is the paper's motivation for constructing CSR at all.
    fn row_range(&self, u: NodeId) -> std::ops::Range<usize> {
        let lo = self.edges.partition_point(|&(s, _)| s < u);
        let hi = self.edges.partition_point(|&(s, _)| s <= u);
        lo..hi
    }
}

impl GraphStore for EdgeListStore {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn degree(&self, u: NodeId) -> usize {
        assert!((u as usize) < self.num_nodes, "node {u} out of range");
        self.row_range(u).len()
    }

    fn row_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        assert!((u as usize) < self.num_nodes, "node {u} out of range");
        out.clear();
        out.extend(self.edges[self.row_range(u)].iter().map(|&(_, v)| v));
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        assert!((u as usize) < self.num_nodes, "node {u} out of range");
        self.edges.binary_search(&(u, v)).is_ok()
    }

    fn heap_bytes(&self) -> usize {
        self.edges.capacity() * std::mem::size_of::<Edge>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EdgeListStore {
        EdgeListStore::from_edge_list(&EdgeList::new(5, vec![(3, 1), (0, 2), (3, 0), (1, 4)]))
    }

    #[test]
    fn rows_via_binary_search() {
        let s = sample();
        let mut row = Vec::new();
        s.row_into(3, &mut row);
        assert_eq!(row, [0, 1]);
        s.row_into(2, &mut row);
        assert!(row.is_empty());
        assert_eq!(s.degree(3), 2);
        assert_eq!(s.degree(4), 0);
    }

    #[test]
    fn membership() {
        let s = sample();
        assert!(s.has_edge(0, 2));
        assert!(s.has_edge(1, 4));
        assert!(!s.has_edge(2, 0));
        assert!(!s.has_edge(4, 4));
    }

    #[test]
    fn size_is_eight_bytes_per_edge_plus_slack() {
        let s = sample();
        assert!(s.heap_bytes() >= 4 * 8);
    }

    #[test]
    fn empty() {
        let s = EdgeListStore::from_edge_list(&EdgeList::new(0, vec![]));
        assert_eq!(s.num_edges(), 0);
    }
}
