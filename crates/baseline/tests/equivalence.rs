//! Cross-baseline equivalence: every store must answer every query
//! identically on arbitrary graphs, and the CSR from the core crate must
//! agree with all of them.

use proptest::prelude::*;

use parcsr::{CsrBuilder, NeighborSource};
use parcsr_baseline::{AdjacencyList, AdjacencyMatrix, EdgeListStore, GraphStore};
use parcsr_graph::EdgeList;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    prop::collection::vec((0u32..60, 0u32..60), 0..200).prop_map(|edges| {
        let n = edges.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(1);
        EdgeList::new(n as usize, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_stores_agree(g in arb_graph()) {
        let deduped = g.deduped(); // the matrix collapses duplicates
        let list = AdjacencyList::from_edge_list(&deduped);
        let matrix = AdjacencyMatrix::from_edge_list(&deduped);
        let flat = EdgeListStore::from_edge_list(&deduped);
        let csr = CsrBuilder::new().build(&deduped);

        prop_assert_eq!(list.num_edges(), matrix.num_edges());
        prop_assert_eq!(flat.num_edges(), csr.num_edges());

        let n = deduped.num_nodes() as u32;
        let mut r1 = Vec::new();
        let mut r2 = Vec::new();
        let mut r3 = Vec::new();
        for u in 0..n {
            GraphStore::row_into(&list, u, &mut r1);
            GraphStore::row_into(&matrix, u, &mut r2);
            GraphStore::row_into(&flat, u, &mut r3);
            prop_assert_eq!(&r1, &r2, "list vs matrix, node {}", u);
            prop_assert_eq!(&r1, &r3, "list vs flat, node {}", u);
            prop_assert_eq!(&r1[..], csr.neighbors(u), "list vs csr, node {}", u);
            prop_assert_eq!(GraphStore::degree(&list, u), NeighborSource::degree(&csr, u));
            for v in 0..n {
                let want = GraphStore::has_edge(&matrix, u, v);
                prop_assert_eq!(GraphStore::has_edge(&list, u, v), want);
                prop_assert_eq!(GraphStore::has_edge(&flat, u, v), want);
                prop_assert_eq!(csr.has_edge(u, v), want);
            }
        }
    }

    #[test]
    fn size_ordering_holds_on_sparse_graphs(
        edges in prop::collection::vec((0u32..2000, 0u32..2000), 200..400)
    ) {
        // For sparse graphs (m << n²/64) the matrix must dwarf both list
        // structures.
        let g = EdgeList::new(2000, edges);
        let matrix = AdjacencyMatrix::from_edge_list(&g);
        let list = AdjacencyList::from_edge_list(&g);
        let flat = EdgeListStore::from_edge_list(&g);
        prop_assert!(matrix.heap_bytes() > list.heap_bytes());
        prop_assert!(matrix.heap_bytes() > flat.heap_bytes());
    }
}
