//! In-tree shim of the `rand` 0.8 API subset this workspace uses.
//!
//! No crates.io access is available in the build environment, so the
//! generators live here: [`rngs::SmallRng`] is xoshiro256++ (the same family
//! the real `small_rng` feature uses), seeded through SplitMix64 exactly as
//! `SeedableRng::seed_from_u64` does upstream. The statistical quality is
//! more than adequate for the synthetic-graph generators and property tests
//! in this repo; sequences differ from upstream `rand`, which only matters
//! if a test hard-codes upstream's exact output (none do).

/// Low-level RNG interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array upstream).
    type Seed;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling interface (the `Rng` extension trait).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53-bit uniform in [0, 1).
        standard_f64(self.next_u64()) < p
    }

    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types the standard distribution (`rng.gen()`) can produce.
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

#[inline]
fn standard_f64(bits: u64) -> f64 {
    // IEEE-754 double: 53 significant bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        standard_f64(rng.next_u64())
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform in `[low, high)` (callers guarantee `low < high`).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The successor of `self`, for inclusive upper bounds.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                // Lemire's unbiased bounded sampling via 128-bit widening
                // multiply with rejection.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let threshold = span.wrapping_neg() % span;
                    while lo < threshold {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                low.wrapping_add((m >> 64) as $t)
            }

            #[inline]
            fn successor(self) -> Self {
                self + 1
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + standard_f64(rng.next_u64()) * (high - low)
    }

    #[inline]
    fn successor(self) -> Self {
        self
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_half_open(rng, lo, hi.successor())
    }
}

pub mod distr {
    //! Non-uniform distributions (the subset of `rand_distr` this workspace
    //! uses).

    use super::{standard_f64, RngCore};

    /// Zipf (zeta) distribution over ranks `1..=n` with exponent `s ≥ 0`:
    /// `P(k) ∝ k^-s`. `s = 0` is uniform; social-network access skew is
    /// typically `s ≈ 1`.
    ///
    /// Sampling is inverse-CDF over a precomputed cumulative table: `O(n)`
    /// setup and memory, `O(log n)` per sample, exactly the target
    /// distribution. (Upstream `rand_distr` uses `O(1)` rejection-inversion;
    /// the table is simpler and plenty for the load driver's one-time setup
    /// over a graph's node count.)
    #[derive(Debug, Clone)]
    pub struct Zipf {
        cdf: Vec<f64>,
    }

    impl Zipf {
        /// Builds the distribution.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0` or `s` is negative or non-finite.
        #[must_use]
        pub fn new(n: usize, s: f64) -> Self {
            assert!(n >= 1, "Zipf needs at least one rank");
            assert!(s.is_finite() && s >= 0.0, "Zipf exponent s={s} invalid");
            let mut cdf = Vec::with_capacity(n);
            let mut cum = 0.0f64;
            for k in 1..=n {
                cum += (k as f64).powf(-s);
                cdf.push(cum);
            }
            let norm = cum;
            for c in &mut cdf {
                *c /= norm;
            }
            // Guard against rounding: the last boundary must be exactly 1 so
            // every u ∈ [0, 1) maps to a rank.
            *cdf.last_mut().expect("n >= 1") = 1.0;
            Zipf { cdf }
        }

        /// Number of ranks.
        #[must_use]
        pub fn n(&self) -> usize {
            self.cdf.len()
        }

        /// Draws one rank in `1..=n`.
        pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            let u = standard_f64(rng.next_u64());
            // First rank whose cumulative probability exceeds u.
            (self.cdf.partition_point(|&c| c <= u) + 1) as u64
        }

        /// Like [`Self::sample`] but 0-based (`0..n`), the index form the
        /// load driver uses against rank-ordered arrays.
        pub fn sample_index<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            self.sample(rng) as usize - 1
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used for seed expansion (matches upstream's
    /// `seed_from_u64` construction).
    #[inline]
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A small, fast RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    /// The default RNG, aliased to the same engine in this shim.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pub(), c.next_u64_pub());
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(5..=6u64);
            assert!(x == 5 || x == 6);
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    mod zipf {
        use super::super::distr::Zipf;
        use super::super::SeedableRng;
        use super::SmallRng;

        #[test]
        fn samples_stay_in_rank_range_and_are_deterministic() {
            let z = Zipf::new(100, 1.1);
            assert_eq!(z.n(), 100);
            let mut a = SmallRng::seed_from_u64(5);
            let mut b = SmallRng::seed_from_u64(5);
            for _ in 0..2_000 {
                let ka = z.sample(&mut a);
                assert!((1..=100).contains(&ka));
                assert_eq!(ka, z.sample(&mut b));
                assert_eq!(z.sample_index(&mut a) + 1, z.sample(&mut b) as usize);
            }
        }

        #[test]
        fn single_rank_always_returns_it() {
            let z = Zipf::new(1, 1.0);
            let mut rng = SmallRng::seed_from_u64(9);
            for _ in 0..100 {
                assert_eq!(z.sample(&mut rng), 1);
            }
        }

        #[test]
        fn zero_exponent_is_uniform() {
            let z = Zipf::new(10, 0.0);
            let mut rng = SmallRng::seed_from_u64(21);
            let mut counts = [0u32; 10];
            for _ in 0..50_000 {
                counts[z.sample_index(&mut rng)] += 1;
            }
            for (k, &c) in counts.iter().enumerate() {
                // Each rank expects 5000; allow ±10%.
                assert!((4_500..=5_500).contains(&c), "rank {k} count {c}");
            }
        }

        /// Goodness of fit: on log-log axes, Zipf rank frequencies fall on a
        /// line of slope `-s`. Fit the empirical slope by least squares over
        /// the well-populated head ranks and require it within tolerance.
        #[test]
        fn rank_frequency_slope_matches_exponent() {
            for &s in &[0.8f64, 1.0, 1.3] {
                let n = 1_000;
                let z = Zipf::new(n, s);
                let mut rng = SmallRng::seed_from_u64(12_345);
                let mut counts = vec![0u64; n];
                let samples = 400_000;
                for _ in 0..samples {
                    counts[z.sample_index(&mut rng)] += 1;
                }
                // Head ranks only: each has thousands of hits, so sampling
                // noise on log(count) is small.
                let head = 30;
                let points: Vec<(f64, f64)> = (0..head)
                    .map(|k| (((k + 1) as f64).ln(), (counts[k].max(1) as f64).ln()))
                    .collect();
                let m = points.len() as f64;
                let sx: f64 = points.iter().map(|p| p.0).sum();
                let sy: f64 = points.iter().map(|p| p.1).sum();
                let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
                let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
                let slope = (m * sxy - sx * sy) / (m * sxx - sx * sx);
                assert!(
                    (slope + s).abs() < 0.05,
                    "s={s}: fitted slope {slope} (want {})",
                    -s
                );
            }
        }

        #[test]
        #[should_panic(expected = "at least one rank")]
        fn zero_ranks_panics() {
            let _ = Zipf::new(0, 1.0);
        }

        #[test]
        #[should_panic(expected = "invalid")]
        fn negative_exponent_panics() {
            let _ = Zipf::new(10, -1.0);
        }
    }
}
