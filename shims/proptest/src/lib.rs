//! In-tree shim of the `proptest` API subset this workspace uses.
//!
//! The build environment has no crates.io access, so the property-test
//! surface is reimplemented here: the [`proptest!`] macro, range / tuple /
//! collection / `prop_map` / `prop_oneof!` strategies, and the
//! `prop_assert*` macros. Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   scope; rerunning is deterministic (see below), so the failure
//!   reproduces exactly.
//! * **Deterministic seeding.** Each test function derives its RNG seed from
//!   its module path and case index, so runs are reproducible in CI without
//!   a persisted regression file.
//! * Default case count is 64 (upstream: 256) to keep the tier-1 gate fast;
//!   tests that want more set `ProptestConfig::with_cases` exactly as with
//!   upstream.

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod test_runner {
    //! Case-count configuration and the per-test RNG.

    pub use rand::rngs::SmallRng as TestRngInner;
    use rand::SeedableRng;

    /// Test-runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// A test-case failure carrying a human-readable reason. Upstream
    /// distinguishes rejections from failures; this shim has no `prop_assume`
    /// rejection machinery, so everything is a failure.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Fails the current case with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Result type of a single property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub TestRngInner);

    impl TestRng {
        /// Deterministic RNG for one `(test, case)` pair.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(TestRngInner::seed_from_u64(
                h ^ (u64::from(case)).wrapping_mul(0x9E3779B97F4A7C15),
            ))
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates values of an associated type from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates with `self`, then generates from the strategy `f`
        /// builds out of that value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_flat_map` combinator.
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.0.gen_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Full-domain strategy for `any::<T>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(pub std::marker::PhantomData<T>);

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.0.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.0.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.0.gen::<f64>()
        }
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

pub mod prop {
    //! The `prop::` namespace (`prop::collection::vec`, …).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Length specification: a fixed size or a range of sizes.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_exclusive: *r.end() + 1,
                }
            }
        }

        impl SizeRange {
            fn sample(&self, rng: &mut TestRng) -> usize {
                rng.0.gen_range(self.lo..self.hi_exclusive)
            }
        }

        /// Strategy for `Vec`s of `element` values.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet`s of `element` values.
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::btree_set(element, size)`. As upstream, the
        /// produced set can be smaller than the sampled size when duplicate
        /// elements are drawn.
        pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Property-test entry point; mirrors upstream's `proptest! { ... }` block
/// syntax including the optional `#![proptest_config(..)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::Config as Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Run the body in a `Result` context so `?` on
                // `TestCaseError` works like upstream.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                if let Err(e) = __outcome {
                    panic!("proptest case {} failed: {}", __case, e);
                }
            }
        }
    )*};
}

/// `prop_assert!`: plain `assert!` here (no shrinking to abort).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`: plain `assert_ne!` here.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_obeys_len(v in prop::collection::vec(0u32..100, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_map(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(pair.1 >= pair.0);
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![0u64..1, 10u64..11]) {
            prop_assert!(x == 0 || x == 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = prop::collection::vec(any::<u64>(), 5..6);
        let mut r1 = crate::test_runner::TestRng::for_case("t", 0);
        let mut r2 = crate::test_runner::TestRng::for_case("t", 0);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
