//! In-tree shim of the `rayon` API used by this workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal, API-compatible subset of rayon that executes **sequentially**.
//! Parallel semantics the codebase relies on are preserved:
//!
//! * `ThreadPoolBuilder` / `ThreadPool::install` / `current_num_threads`
//!   round-trip the requested pool width (the paper's processor sweep reads
//!   it), tracked per thread so nested `install`s nest correctly.
//! * All `par_*` adapters have rayon's signatures (`reduce(identity, op)`,
//!   `map_init`, `collect_into_vec`, …) and are drop-in at the type level, so
//!   swapping the real rayon back in is a one-line Cargo.toml change.
//!
//! Determinism notes: every algorithm in this workspace is already written
//! to be result-deterministic under rayon's nondeterministic scheduling
//! (first-writer-wins via CAS, fixed-shape reductions, canonicalized
//! frontiers). Sequential execution is one legal schedule of those programs,
//! so outputs are unchanged.

use std::cell::Cell;

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

thread_local! {
    static POOL_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads in the current pool: the width `install`ed on this
/// thread, or the machine's available parallelism outside any pool.
pub fn current_num_threads() -> usize {
    POOL_WIDTH.with(|w| w.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error building a thread pool (the shim never fails; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine-width) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool width; `0` means "use the default width".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" that records its width and runs installed closures inline.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with [`current_num_threads`] reporting this pool's width.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        POOL_WIDTH.with(|w| {
            let prev = w.replace(Some(self.num_threads));
            let out = f();
            w.set(prev);
            out
        })
    }

    /// The pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs two closures and returns both results (sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod iter {
    //! Sequential stand-ins for rayon's parallel iterator traits.

    /// The shim's parallel iterator: a transparent wrapper over a standard
    /// iterator exposing rayon-shaped adapter methods.
    #[derive(Debug, Clone)]
    pub struct Par<I>(pub I);

    impl<I: Iterator> IntoIterator for Par<I> {
        type Item = I::Item;
        type IntoIter = I;
        fn into_iter(self) -> I {
            self.0
        }
    }

    /// Anything convertible into a [`Par`] iterator (rayon's
    /// `IntoParallelIterator`).
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Par<Self::Iter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Item = T::Item;
        type Iter = T::IntoIter;
        fn into_par_iter(self) -> Par<T::IntoIter> {
            Par(self.into_iter())
        }
    }

    /// `par_iter` by shared reference.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type (a reference).
        type Item: 'a;
        /// Underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterates `self` by reference.
        fn par_iter(&'a self) -> Par<Self::Iter>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Item = <&'a T as IntoIterator>::Item;
        type Iter = <&'a T as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    /// `par_iter_mut` by exclusive reference.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Element type (a mutable reference).
        type Item: 'a;
        /// Underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterates `self` by mutable reference.
        fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
    where
        &'a mut T: IntoIterator,
    {
        type Item = <&'a mut T as IntoIterator>::Item;
        type Iter = <&'a mut T as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    /// Marker re-export so `use rayon::prelude::*` brings the adapter
    /// methods into scope exactly like rayon's `ParallelIterator` trait
    /// does. The methods themselves are inherent on [`Par`].
    pub trait ParallelIterator {}
    impl<I: Iterator> ParallelIterator for Par<I> {}

    impl<I: Iterator> Par<I> {
        /// Maps each element.
        pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> Par<std::iter::Map<I, F>> {
            Par(self.0.map(f))
        }

        /// rayon's `map_init`: `init` would run once per worker; here it
        /// runs once total, which is one legal schedule.
        pub fn map_init<T, R, INIT, F>(self, init: INIT, mut f: F) -> Par<impl Iterator<Item = R>>
        where
            INIT: Fn() -> T,
            F: FnMut(&mut T, I::Item) -> R,
        {
            let mut state = init();
            Par(self.0.map(move |x| f(&mut state, x)))
        }

        /// Keeps elements satisfying the predicate.
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
            Par(self.0.filter(f))
        }

        /// Maps then keeps the `Some`s.
        pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
            self,
            f: F,
        ) -> Par<std::iter::FilterMap<I, F>> {
            Par(self.0.filter_map(f))
        }

        /// Maps each element to an iterable and flattens.
        pub fn flat_map<R: IntoIterator, F: FnMut(I::Item) -> R>(
            self,
            f: F,
        ) -> Par<std::iter::FlatMap<I, R, F>> {
            Par(self.0.flat_map(f))
        }

        /// rayon's serial-inner `flat_map`; identical here.
        pub fn flat_map_iter<R: IntoIterator, F: FnMut(I::Item) -> R>(
            self,
            f: F,
        ) -> Par<std::iter::FlatMap<I, R, F>> {
            Par(self.0.flat_map(f))
        }

        /// Flattens nested iterables.
        pub fn flatten(self) -> Par<std::iter::Flatten<I>>
        where
            I::Item: IntoIterator,
        {
            Par(self.0.flatten())
        }

        /// Copies referenced elements.
        pub fn copied<'a, T: 'a + Copy>(self) -> Par<std::iter::Copied<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            Par(self.0.copied())
        }

        /// Clones referenced elements.
        pub fn cloned<'a, T: 'a + Clone>(self) -> Par<std::iter::Cloned<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            Par(self.0.cloned())
        }

        /// Pairs elements with their index.
        pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
            Par(self.0.enumerate())
        }

        /// Skips the first `n` items.
        pub fn skip(self, n: usize) -> Par<std::iter::Skip<I>> {
            Par(self.0.skip(n))
        }

        /// Takes only the first `n` items.
        pub fn take(self, n: usize) -> Par<std::iter::Take<I>> {
            Par(self.0.take(n))
        }

        /// Zips with another (into-)parallel iterator.
        pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::Iter>> {
            Par(self.0.zip(other.into_par_iter().0))
        }

        /// Chains another (into-)parallel iterator after this one.
        pub fn chain<C>(self, other: C) -> Par<std::iter::Chain<I, C::Iter>>
        where
            C: IntoParallelIterator<Item = I::Item>,
        {
            Par(self.0.chain(other.into_par_iter().0))
        }

        /// Consumes the iterator, calling `f` on each element.
        pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
            self.0.for_each(f)
        }

        /// rayon's `reduce`: folds with `op` from `identity()`.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }

        /// Sums the elements.
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        /// Maximum element, if any.
        pub fn max(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.max()
        }

        /// Minimum element, if any.
        pub fn min(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.min()
        }

        /// Element count.
        pub fn count(self) -> usize {
            self.0.count()
        }

        /// True if any element satisfies the predicate.
        pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut iter = self.0;
            iter.any(f)
        }

        /// True if all elements satisfy the predicate.
        pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut iter = self.0;
            iter.all(f)
        }

        /// Collects into any `FromIterator` collection.
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        /// rayon's `collect_into_vec`: clears `out` and fills it.
        pub fn collect_into_vec(self, out: &mut Vec<I::Item>) {
            out.clear();
            out.extend(self.0);
        }

        /// Minimum split length hint — a no-op sequentially.
        pub fn with_min_len(self, _len: usize) -> Self {
            self
        }

        /// Maximum split length hint — a no-op sequentially.
        pub fn with_max_len(self, _len: usize) -> Self {
            self
        }
    }
}

pub mod slice {
    //! `par_chunks` / `par_sort_*` extension traits over slices.

    use crate::iter::Par;

    /// Shared-slice parallel views.
    pub trait ParallelSlice<T> {
        /// Chunks of at most `size` elements.
        fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>>;
        /// Overlapping windows of exactly `size` elements.
        fn par_windows(&self, size: usize) -> Par<std::slice::Windows<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
            Par(self.chunks(size))
        }
        fn par_windows(&self, size: usize) -> Par<std::slice::Windows<'_, T>> {
            Par(self.windows(size))
        }
    }

    /// Exclusive-slice parallel views and sorts.
    pub trait ParallelSliceMut<T> {
        /// Mutable chunks of at most `size` elements.
        fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
        /// Mutable chunks of exactly `size` elements (remainder dropped).
        fn par_chunks_exact_mut(&mut self, size: usize) -> Par<std::slice::ChunksExactMut<'_, T>>;
        /// Unstable sort.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        /// Unstable sort by key.
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
        /// Unstable sort by comparator.
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F);
        /// Stable sort.
        fn par_sort(&mut self)
        where
            T: Ord;
        /// Stable sort by key.
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
            Par(self.chunks_mut(size))
        }
        fn par_chunks_exact_mut(&mut self, size: usize) -> Par<std::slice::ChunksExactMut<'_, T>> {
            Par(self.chunks_exact_mut(size))
        }
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable()
        }
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.sort_unstable_by_key(f)
        }
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F) {
            self.sort_unstable_by(f)
        }
        fn par_sort(&mut self)
        where
            T: Ord,
        {
            self.sort()
        }
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.sort_by_key(f)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pool_width_round_trips_and_nests() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(7)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(crate::current_num_threads(), 3);
            inner.install(|| assert_eq!(crate::current_num_threads(), 7));
            assert_eq!(crate::current_num_threads(), 3);
        });
    }

    #[test]
    fn adapters_match_sequential_results() {
        let v: Vec<u64> = (0..100).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[99], 198);
        let s: u64 = v.par_iter().copied().sum();
        assert_eq!(s, 4950);
        let r = (0..10u64).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 45);
        let mut out = Vec::new();
        v.par_iter().map(|&x| x + 1).collect_into_vec(&mut out);
        assert_eq!(out.len(), 100);
        let mut arr = [3u64, 1, 2];
        arr.par_sort_unstable();
        assert_eq!(arr, [1, 2, 3]);
    }
}
