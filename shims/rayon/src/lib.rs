//! In-tree shim of the `rayon` API used by this workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal, API-compatible subset of rayon. Since the concurrency-correctness
//! PR it executes **with real threads** whenever the effective pool width is
//! greater than one:
//!
//! * [`join`] runs its second closure on a scoped thread.
//! * `map` / `flat_map` / `flat_map_iter` evaluate eagerly across a scoped
//!   thread team, splitting the input into one contiguous chunk per thread
//!   (results are concatenated in input order, so output equals the
//!   sequential result for deterministic closures).
//! * `for_each` dispatches its items across the same kind of thread team.
//!
//! At width 1 (`ThreadPool::install`ed width 1, or a single-core machine)
//! every operation runs sequentially on the calling thread, byte-for-byte
//! identical to the old sequential shim — the determinism anchor the
//! processor-sweep tests rely on. Worker threads report
//! [`current_num_threads`] `== 1`, so nested parallel calls run sequentially
//! inside workers (depth-one parallelism; rayon would instead share one
//! global pool).
//!
//! Remaining deliberately sequential pieces, chosen because their callers do
//! the heavy lifting in an upstream eager `map`: `reduce`, `sum`, `collect`
//! (they drain an already-computed buffer), `map_init` (its single-state
//! sequential semantics is one legal rayon schedule and keeps sampled
//! generators deterministic), and the `par_sort_*` family.
//!
//! Semantics the codebase relies on are preserved:
//!
//! * `ThreadPoolBuilder` / `ThreadPool::install` / `current_num_threads`
//!   round-trip the requested pool width (the paper's processor sweep reads
//!   it), tracked per thread so nested `install`s nest correctly.
//! * All `par_*` adapters have rayon's signatures and are drop-in at the
//!   type level, so swapping the real rayon back in is a one-line Cargo.toml
//!   change. Eager adapters carry rayon's `Send`/`Sync` bounds, which is
//!   what lets them actually thread.
//! * Every algorithm in this workspace is written to be result-deterministic
//!   under rayon's nondeterministic scheduling (disjoint chunk writes
//!   verified by `parcsr-check`, first-writer-wins via CAS, fixed-shape
//!   reductions, canonicalized frontiers), so outputs do not depend on the
//!   width.

use std::cell::Cell;

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

thread_local! {
    static POOL_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Index of the current worker thread within its parallel region (0-based),
/// or `None` on any thread that is not a pool worker — the same shape as
/// rayon's free function. The shim spawns workers per region, so the index
/// identifies which of the `p` chunk workers (or `join`'s second arm) is
/// running; instrumentation uses it to attribute spans to workers.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

/// Number of threads in the current pool: the width `install`ed on this
/// thread, or the machine's available parallelism outside any pool.
pub fn current_num_threads() -> usize {
    POOL_WIDTH.with(|w| w.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error building a thread pool (the shim never fails; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine-width) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool width; `0` means "use the default width".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A pool that records its width; closures `install`ed on it dispatch their
/// `par_*` calls across scoped threads of that width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with [`current_num_threads`] reporting this pool's width.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        POOL_WIDTH.with(|w| {
            let prev = w.replace(Some(self.num_threads));
            let out = f();
            w.set(prev);
            out
        })
    }

    /// The pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Runs two closures and returns both results. At width > 1 the second
/// closure runs on a scoped thread while the first runs on the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(|| {
            POOL_WIDTH.with(|w| w.set(Some(1)));
            // The spawned arm is "the other worker" relative to the caller.
            WORKER_INDEX.with(|w| w.set(Some(1)));
            b()
        });
        let ra = a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (ra, rb)
    })
}

/// The scoped-thread work driver shared by the eager adapters.
mod pool {
    use super::{POOL_WIDTH, WORKER_INDEX};

    /// Splits `items` into `parts` contiguous runs of near-equal size
    /// (larger first — the same convention as `parcsr_scan::chunk_ranges`).
    fn split_vec<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
        let n = items.len();
        let parts = parts.max(1).min(n.max(1));
        let base = n / parts;
        let extra = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut rest = items;
        for i in 0..parts - 1 {
            let size = base + usize::from(i < extra);
            let tail = rest.split_off(size);
            out.push(std::mem::replace(&mut rest, tail));
        }
        out.push(rest);
        out
    }

    /// Runs `work` over each chunk of `items` on its own scoped thread and
    /// returns the per-chunk results in input order. Worker threads see a
    /// pool width of 1, so nested parallelism degrades to sequential.
    fn run_chunked<T, R>(items: Vec<T>, width: usize, work: impl Fn(Vec<T>) -> R + Sync) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        let chunks = split_vec(items, width);
        let work = &work;
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .enumerate()
                .map(|(index, chunk)| {
                    scope.spawn(move || {
                        POOL_WIDTH.with(|w| w.set(Some(1)));
                        WORKER_INDEX.with(|w| w.set(Some(index)));
                        work(chunk)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        })
    }

    /// Parallel map preserving input order.
    pub(crate) fn map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let width = super::current_num_threads();
        if width <= 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        run_chunked(items, width, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Parallel flat-map (serial inner iterators) preserving input order.
    pub(crate) fn flat_map_vec<T, P, F>(items: Vec<T>, f: F) -> Vec<P::Item>
    where
        T: Send,
        P: IntoIterator,
        P::Item: Send,
        F: Fn(T) -> P + Sync,
    {
        let width = super::current_num_threads();
        if width <= 1 || items.len() <= 1 {
            return items.into_iter().flat_map(f).collect();
        }
        run_chunked(items, width, |chunk| {
            chunk.into_iter().flat_map(&f).collect::<Vec<P::Item>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Parallel for-each.
    pub(crate) fn for_each_vec<T, F>(items: Vec<T>, f: F)
    where
        T: Send,
        F: Fn(T) + Sync,
    {
        let width = super::current_num_threads();
        if width <= 1 || items.len() <= 1 {
            items.into_iter().for_each(f);
            return;
        }
        run_chunked(items, width, |chunk| chunk.into_iter().for_each(&f));
    }
}

pub mod iter {
    //! rayon-shaped parallel iterator adapters. Eager adapters (`map`,
    //! `flat_map`, `for_each`) dispatch across scoped threads; the rest wrap
    //! standard sequential iterators.

    /// The shim's parallel iterator: a wrapper over a standard iterator
    /// exposing rayon-shaped adapter methods.
    #[derive(Debug, Clone)]
    pub struct Par<I>(pub I);

    impl<I: Iterator> IntoIterator for Par<I> {
        type Item = I::Item;
        type IntoIter = I;
        fn into_iter(self) -> I {
            self.0
        }
    }

    /// Anything convertible into a [`Par`] iterator (rayon's
    /// `IntoParallelIterator`).
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Par<Self::Iter>;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Item = T::Item;
        type Iter = T::IntoIter;
        fn into_par_iter(self) -> Par<T::IntoIter> {
            Par(self.into_iter())
        }
    }

    /// `par_iter` by shared reference.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type (a reference).
        type Item: 'a;
        /// Underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterates `self` by reference.
        fn par_iter(&'a self) -> Par<Self::Iter>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Item = <&'a T as IntoIterator>::Item;
        type Iter = <&'a T as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    /// `par_iter_mut` by exclusive reference.
    pub trait IntoParallelRefMutIterator<'a> {
        /// Element type (a mutable reference).
        type Item: 'a;
        /// Underlying sequential iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterates `self` by mutable reference.
        fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
    where
        &'a mut T: IntoIterator,
    {
        type Item = <&'a mut T as IntoIterator>::Item;
        type Iter = <&'a mut T as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
            Par(self.into_iter())
        }
    }

    /// Marker re-export so `use rayon::prelude::*` brings the adapter
    /// methods into scope exactly like rayon's `ParallelIterator` trait
    /// does. The methods themselves are inherent on [`Par`].
    pub trait ParallelIterator {}
    impl<I: Iterator> ParallelIterator for Par<I> {}

    impl<I: Iterator> Par<I> {
        /// Maps each element, eagerly, across the current pool width.
        /// Output order equals input order.
        pub fn map<R, F>(self, f: F) -> Par<std::vec::IntoIter<R>>
        where
            I::Item: Send,
            R: Send,
            F: Fn(I::Item) -> R + Sync,
        {
            let items: Vec<I::Item> = self.0.collect();
            Par(crate::pool::map_vec(items, f).into_iter())
        }

        /// rayon's `map_init`: sequential here, with one state total (one
        /// legal schedule of rayon's one-state-per-worker contract; also
        /// what keeps seeded samplers deterministic).
        pub fn map_init<T, R, INIT, F>(self, init: INIT, mut f: F) -> Par<impl Iterator<Item = R>>
        where
            INIT: Fn() -> T,
            F: FnMut(&mut T, I::Item) -> R,
        {
            let mut state = init();
            Par(self.0.map(move |x| f(&mut state, x)))
        }

        /// Keeps elements satisfying the predicate.
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
            Par(self.0.filter(f))
        }

        /// Maps then keeps the `Some`s.
        pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
            self,
            f: F,
        ) -> Par<std::iter::FilterMap<I, F>> {
            Par(self.0.filter_map(f))
        }

        /// Maps each element to an iterable and flattens, eagerly, across
        /// the current pool width. Output order equals input order.
        pub fn flat_map<R, F>(self, f: F) -> Par<std::vec::IntoIter<R::Item>>
        where
            I::Item: Send,
            R: IntoIterator,
            R::Item: Send,
            F: Fn(I::Item) -> R + Sync,
        {
            let items: Vec<I::Item> = self.0.collect();
            Par(crate::pool::flat_map_vec::<_, R, _>(items, f).into_iter())
        }

        /// rayon's serial-inner `flat_map_iter`; identical to [`Par::flat_map`]
        /// here (the inner iterators are always consumed serially by the
        /// worker that produced them).
        pub fn flat_map_iter<R, F>(self, f: F) -> Par<std::vec::IntoIter<R::Item>>
        where
            I::Item: Send,
            R: IntoIterator,
            R::Item: Send,
            F: Fn(I::Item) -> R + Sync,
        {
            self.flat_map(f)
        }

        /// Flattens nested iterables.
        pub fn flatten(self) -> Par<std::iter::Flatten<I>>
        where
            I::Item: IntoIterator,
        {
            Par(self.0.flatten())
        }

        /// Copies referenced elements.
        pub fn copied<'a, T: 'a + Copy>(self) -> Par<std::iter::Copied<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            Par(self.0.copied())
        }

        /// Clones referenced elements.
        pub fn cloned<'a, T: 'a + Clone>(self) -> Par<std::iter::Cloned<I>>
        where
            I: Iterator<Item = &'a T>,
        {
            Par(self.0.cloned())
        }

        /// Pairs elements with their index.
        pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
            Par(self.0.enumerate())
        }

        /// Skips the first `n` items.
        pub fn skip(self, n: usize) -> Par<std::iter::Skip<I>> {
            Par(self.0.skip(n))
        }

        /// Takes only the first `n` items.
        pub fn take(self, n: usize) -> Par<std::iter::Take<I>> {
            Par(self.0.take(n))
        }

        /// Zips with another (into-)parallel iterator.
        pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::Iter>> {
            Par(self.0.zip(other.into_par_iter().0))
        }

        /// Chains another (into-)parallel iterator after this one.
        pub fn chain<C>(self, other: C) -> Par<std::iter::Chain<I, C::Iter>>
        where
            C: IntoParallelIterator<Item = I::Item>,
        {
            Par(self.0.chain(other.into_par_iter().0))
        }

        /// Calls `f` on every element, dispatched across the current pool
        /// width (sequential at width 1).
        pub fn for_each<F>(self, f: F)
        where
            I::Item: Send,
            F: Fn(I::Item) + Sync,
        {
            let items: Vec<I::Item> = self.0.collect();
            crate::pool::for_each_vec(items, f);
        }

        /// rayon's `reduce`: folds with `op` from `identity()`. Sequential:
        /// the expensive upstream stages (`map`) have already run in
        /// parallel by the time the fold drains them.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }

        /// Sums the elements.
        pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
            self.0.sum()
        }

        /// Maximum element, if any.
        pub fn max(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.max()
        }

        /// Minimum element, if any.
        pub fn min(self) -> Option<I::Item>
        where
            I::Item: Ord,
        {
            self.0.min()
        }

        /// Element count.
        pub fn count(self) -> usize {
            self.0.count()
        }

        /// True if any element satisfies the predicate.
        pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut iter = self.0;
            iter.any(f)
        }

        /// True if all elements satisfy the predicate.
        pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
            let mut iter = self.0;
            iter.all(f)
        }

        /// Collects into any `FromIterator` collection.
        pub fn collect<C: FromIterator<I::Item>>(self) -> C {
            self.0.collect()
        }

        /// rayon's `collect_into_vec`: clears `out` and fills it.
        pub fn collect_into_vec(self, out: &mut Vec<I::Item>) {
            out.clear();
            out.extend(self.0);
        }

        /// Minimum split length hint — a no-op here.
        pub fn with_min_len(self, _len: usize) -> Self {
            self
        }

        /// Maximum split length hint — a no-op here.
        pub fn with_max_len(self, _len: usize) -> Self {
            self
        }
    }
}

pub mod slice {
    //! `par_chunks` / `par_sort_*` extension traits over slices.

    use crate::iter::Par;

    /// Shared-slice parallel views.
    pub trait ParallelSlice<T> {
        /// Chunks of at most `size` elements.
        fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>>;
        /// Overlapping windows of exactly `size` elements.
        fn par_windows(&self, size: usize) -> Par<std::slice::Windows<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> Par<std::slice::Chunks<'_, T>> {
            Par(self.chunks(size))
        }
        fn par_windows(&self, size: usize) -> Par<std::slice::Windows<'_, T>> {
            Par(self.windows(size))
        }
    }

    /// Exclusive-slice parallel views and sorts.
    pub trait ParallelSliceMut<T> {
        /// Mutable chunks of at most `size` elements.
        fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
        /// Mutable chunks of exactly `size` elements (remainder dropped).
        fn par_chunks_exact_mut(&mut self, size: usize) -> Par<std::slice::ChunksExactMut<'_, T>>;
        /// Unstable sort.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        /// Unstable sort by key.
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
        /// Unstable sort by comparator.
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F);
        /// Stable sort.
        fn par_sort(&mut self)
        where
            T: Ord;
        /// Stable sort by key.
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
            Par(self.chunks_mut(size))
        }
        fn par_chunks_exact_mut(&mut self, size: usize) -> Par<std::slice::ChunksExactMut<'_, T>> {
            Par(self.chunks_exact_mut(size))
        }
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable()
        }
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.sort_unstable_by_key(f)
        }
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F) {
            self.sort_unstable_by(f)
        }
        fn par_sort(&mut self)
        where
            T: Ord,
        {
            self.sort()
        }
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.sort_by_key(f)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pool_width_round_trips_and_nests() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(7)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(crate::current_num_threads(), 3);
            inner.install(|| assert_eq!(crate::current_num_threads(), 7));
            assert_eq!(crate::current_num_threads(), 3);
        });
    }

    #[test]
    fn adapters_match_sequential_results() {
        let v: Vec<u64> = (0..100).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled[99], 198);
        let s: u64 = v.par_iter().copied().sum();
        assert_eq!(s, 4950);
        let r = (0..10u64).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(r, 45);
        let mut out = Vec::new();
        v.par_iter().map(|&x| x + 1).collect_into_vec(&mut out);
        assert_eq!(out.len(), 100);
        let mut arr = [3u64, 1, 2];
        arr.par_sort_unstable();
        assert_eq!(arr, [1, 2, 3]);
    }

    #[test]
    fn join_runs_both_and_nests() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let (a, b) = pool.install(|| {
            crate::join(
                || (0..1000u64).sum::<u64>(),
                // Nested width inside a worker is 1: nested joins degrade to
                // sequential instead of fanning out.
                || crate::join(crate::current_num_threads, || 7usize),
            )
        });
        assert_eq!(a, 499500);
        assert_eq!(b, (1, 7));
    }

    #[test]
    fn threaded_map_preserves_order_and_runs_concurrently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        // Worker threads are distinct OS threads: at width 4 with 4 items,
        // at least two distinct thread ids must appear.
        let seen = AtomicUsize::new(0);
        let ids: Vec<u64> = pool.install(|| {
            (0..4u64)
                .into_par_iter()
                .map(|i| {
                    seen.fetch_add(1, Ordering::Relaxed);
                    i * 10
                })
                .collect()
        });
        assert_eq!(ids, [0, 10, 20, 30]);
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn threaded_for_each_touches_disjoint_slots() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap();
        let mut data = vec![0u64; 64];
        pool.install(|| {
            data.par_iter_mut()
                .enumerate()
                .for_each(|(i, slot)| *slot = i as u64 + 1)
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn width_one_is_sequential_on_the_calling_thread() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let caller = std::thread::current().id();
        pool.install(|| {
            (0..16u64)
                .into_par_iter()
                .for_each(|_| assert_eq!(std::thread::current().id(), caller));
            let (ta, tb) = crate::join(
                || std::thread::current().id(),
                || std::thread::current().id(),
            );
            assert_eq!(ta, caller);
            assert_eq!(tb, caller);
        });
    }

    #[test]
    fn flat_map_matches_sequential() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let got: Vec<u64> = pool.install(|| {
            (0..10u64)
                .into_par_iter()
                .flat_map_iter(|i| (0..i).map(move |j| i * 100 + j))
                .collect()
        });
        let want: Vec<u64> = (0..10u64)
            .flat_map(|i| (0..i).map(move |j| i * 100 + j))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn worker_index_attributes_chunks_and_join_arms() {
        // Outside any pool: no worker identity.
        assert_eq!(crate::current_thread_index(), None);
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let indices: Vec<Option<usize>> = pool.install(|| {
            // The coordinator inside `install` is still not a worker.
            assert_eq!(crate::current_thread_index(), None);
            (0..4u64)
                .into_par_iter()
                .map(|_| crate::current_thread_index())
                .collect()
        });
        // 4 items at width 4: one chunk per worker, indices 0..4.
        let mut seen: Vec<usize> = indices.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, [0, 1, 2, 3]);
        let (ia, ib) =
            pool.install(|| crate::join(crate::current_thread_index, crate::current_thread_index));
        assert_eq!(ia, None);
        assert_eq!(ib, Some(1));
    }

    #[test]
    fn panic_in_worker_propagates() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..8u64).into_par_iter().for_each(|i| {
                    assert!(i < 4, "worker panic {i}");
                })
            })
        }));
        assert!(r.is_err());
    }
}
