//! In-tree shim of the `criterion` API subset this workspace's benches use.
//!
//! The build environment has no crates.io access, so the benches run on this
//! lightweight wall-clock harness instead. Semantics:
//!
//! * By default each benchmark body executes **once** and the elapsed time
//!   is reported — fast enough that compiling-and-smoking the bench targets
//!   stays cheap in CI and under `cargo test`.
//! * Set `PARCSR_BENCH_MS=<millis>` to measure for real: each benchmark is
//!   warmed up once, then iterated until the budget elapses, and the mean
//!   ns/iter (plus throughput when declared) is printed.
//!
//! Output format (one line per benchmark, machine-greppable):
//! `bench <group>/<id> <ns_per_iter> ns/iter [<elems_per_sec> elem/s] (<iters> iters)`

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn measure_budget() -> Duration {
    std::env::var("PARCSR_BENCH_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::ZERO)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The per-benchmark timing driver.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f` (see crate docs for the budget rules).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let budget = measure_budget();
        // One call always runs: it is the smoke test and the warm-up.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed();
        if budget.is_zero() {
            self.ns_per_iter = first.as_nanos() as f64;
            self.iters = 1;
            return;
        }
        let mut iters: u64 = 0;
        let mut spent = Duration::ZERO;
        while spent < budget {
            let t = Instant::now();
            black_box(f());
            spent += t.elapsed();
            iters += 1;
        }
        self.ns_per_iter = spent.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; accepted for API parity, unused by this harness.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Warm-up-time hint; accepted for API parity, unused by this harness.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measurement-time hint; the `PARCSR_BENCH_MS` env var rules instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        self.criterion
            .report(&format!("{}/{}", self.name, id.name), &b, self.throughput);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id.name), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The harness entry object handed to each bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.name, &b, None);
        self
    }

    fn report(&self, name: &str, b: &Bencher, throughput: Option<Throughput>) {
        let mut line = format!("bench {name} {:.0} ns/iter", b.ns_per_iter);
        if let Some(tp) = throughput {
            let per_sec = |units: u64| units as f64 / (b.ns_per_iter / 1e9);
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!(" {:.0} elem/s", per_sec(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(" {:.0} B/s", per_sec(n)));
                }
            }
        }
        line.push_str(&format!(" ({} iters)", b.iters));
        println!("{line}");
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }
}
