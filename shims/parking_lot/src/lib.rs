#![deny(unsafe_op_in_unsafe_fn)]

//! In-tree shim of the `parking_lot` API subset this workspace uses,
//! implemented over `std::sync`. parking_lot's locks don't poison; the shim
//! matches that by unwrapping poison into the inner guard (a panicked
//! critical section aborts the test anyway).

/// A mutex whose `lock` returns the guard directly (no poison handling).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks on the guard until notified (parking_lot signature: the guard
    /// is re-acquired in place).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free dance: std's wait consumes and returns the guard; take
        // it out and put the reacquired one back.
        replace_with(guard, |g| {
            self.0
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        });
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replaces `*slot` with `f(old)`, aborting if `f` panics (the guard cannot
/// be left dangling).
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = AbortOnDrop;
    // SAFETY: `old` is read out of `slot` and `slot` is unconditionally
    // rewritten with `f(old)` before the bomb is defused; a panic in `f`
    // aborts, so a double-drop of `old` is impossible.
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
