#!/usr/bin/env bash
# Regenerates every evaluation artifact into results/.
#
# Usage: scripts/run_experiments.sh [extra table2/fig flags...]
# e.g.:  scripts/run_experiments.sh --full --procs 1,4,8,16,64
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results
echo "== building release binaries =="
cargo build --release -p parcsr-bench

echo "== Table II =="
cargo run --release -q -p parcsr-bench --bin table2 -- "$@" | tee results/table2.md
echo "== Figure 6 =="
cargo run --release -q -p parcsr-bench --bin fig6 -- "$@" | tee results/fig6.txt
echo "== Figure 7 =="
cargo run --release -q -p parcsr-bench --bin fig7 -- "$@" | tee results/fig7.txt

echo "results written to results/"
