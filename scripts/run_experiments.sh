#!/usr/bin/env bash
# Regenerates every evaluation artifact into results/.
#
# Usage: scripts/run_experiments.sh [extra table2/fig flags...]
# e.g.:  scripts/run_experiments.sh --full --procs 1,4,8,16,64
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results
echo "== building release binaries (obs feature: tracing + metrics + mem) =="
cargo build --release -p parcsr-bench --features obs

# Every run records metrics and heap accounting; the stage summaries on
# stderr (now including the `== mem ==` section) are archived next to the
# tables so memory regressions are diffable across runs.
echo "== Table II =="
cargo run --release -q -p parcsr-bench --features obs --bin table2 -- \
  --metrics --mem-metrics --trace results/table2.trace.json "$@" \
  | tee results/table2.md \
  2> >(tee results/table2.stages.txt >&2)
echo "== Figure 6 =="
cargo run --release -q -p parcsr-bench --features obs --bin fig6 -- \
  --metrics --mem-metrics --trace results/fig6.trace.json "$@" \
  | tee results/fig6.txt \
  2> >(tee results/fig6.stages.txt >&2)
echo "== Figure 7 =="
cargo run --release -q -p parcsr-bench --features obs --bin fig7 -- \
  --metrics --mem-metrics --trace results/fig7.trace.json "$@" \
  | tee results/fig7.txt \
  2> >(tee results/fig7.stages.txt >&2)

# Machine-readable per-stage breakdown per (dataset, p): the bench JSON
# schema carries a `stages` array (with `mem_peak_bytes`) and a `mem`
# object on every processor sample. Compare two of these with
# `cargo xtask stage-diff <baseline> <current>`.
echo "== Table II (JSON, per-stage breakdown + memory) =="
cargo run --release -q -p parcsr-bench --features obs --bin table2 -- \
  --json --metrics --mem-metrics "$@" > results/table2.stages.json

echo "results written to results/ (incl. *.trace.json Chrome traces and *.stages.* breakdowns with memory sections)"
