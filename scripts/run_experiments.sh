#!/usr/bin/env bash
# Regenerates every evaluation artifact into results/.
#
# Usage: scripts/run_experiments.sh [extra table2/fig flags...]
# e.g.:  scripts/run_experiments.sh --full --procs 1,4,8,16,64
#
# Every artifact name is prefixed with a per-run id (override with
# PARCSR_RUN_ID=... for stable names), so consecutive runs land side by
# side instead of silently overwriting each other.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_ID="${PARCSR_RUN_ID:-$(date +%Y%m%d-%H%M%S)}"
OUT="results/${RUN_ID}"

mkdir -p results
echo "== building release binaries (obs feature: tracing + metrics + mem) =="
cargo build --release -p parcsr-bench -p parcsr-cli --features parcsr-bench/obs,parcsr-cli/obs

# Every run records metrics and heap accounting; the stage summaries on
# stderr (now including the `== mem ==` section) are archived next to the
# tables so memory regressions are diffable across runs.
echo "== Table II (run ${RUN_ID}) =="
cargo run --release -q -p parcsr-bench --features obs --bin table2 -- \
  --metrics --mem-metrics --trace "${OUT}.table2.trace.json" "$@" \
  2> >(tee "${OUT}.table2.stages.txt" >&2) \
  | tee "${OUT}.table2.md"
echo "== Figure 6 =="
cargo run --release -q -p parcsr-bench --features obs --bin fig6 -- \
  --metrics --mem-metrics --trace "${OUT}.fig6.trace.json" "$@" \
  2> >(tee "${OUT}.fig6.stages.txt" >&2) \
  | tee "${OUT}.fig6.txt"
echo "== Figure 7 =="
cargo run --release -q -p parcsr-bench --features obs --bin fig7 -- \
  --metrics --mem-metrics --trace "${OUT}.fig7.trace.json" "$@" \
  2> >(tee "${OUT}.fig7.stages.txt" >&2) \
  | tee "${OUT}.fig7.txt"

# Machine-readable per-stage breakdown per (dataset, p): the bench JSON
# schema carries a `stages` array (with `mem_peak_bytes`, and with
# `--imbalance` a per-stage utilization/cv/critical-path object) and a
# `mem` object on every processor sample. Compare two of these with
# `cargo xtask stage-diff <baseline> <current>`.
echo "== Table II (JSON, per-stage breakdown + memory + imbalance) =="
cargo run --release -q -p parcsr-bench --features obs --bin table2 -- \
  --json --metrics --mem-metrics --imbalance "$@" > "${OUT}.table2.stages.json"

# Closed-loop serving run: sustained qps + latency percentiles per window,
# per query kind, and per degree class on the 2M-edge hub graph — plus the
# queue/exec/reply phase decomposition and per-window tail exemplars —
# archived as a *.slo.json summary (`cargo xtask slo-check <file>
# --p99-ns/--p99-queue-ns/...` to gate a run; compare two runs' overall
# blocks for serving drift).
echo "== closed-loop serving (qps + latency percentiles + SLO summary) =="
# Each run exposes the admin plane on a per-client-count port; a mid-run
# `parcsr watch --once` archives a live exposition scrape next to the SLO
# summary, and the raw /history scrape (the rotated-window ring `watch`
# renders as sparklines) lands beside it as *.scrape.txt.history
# (validate either with `cargo xtask expo-check <scrape>`).
for clients in 1 2 8; do
  admin_port=$((9300 + clients))
  cargo run --release -q -p parcsr-bench --features obs --bin queries_closed_loop -- \
    --graph hub --clients "$clients" --duration-ms 2000 --window-ms 250 --json \
    --admin-port "$admin_port" \
    2> >(tee "${OUT}.closed_loop.c${clients}.txt" >&2) \
    > "${OUT}.closed_loop.c${clients}.slo.json" &
  driver=$!
  sleep 1
  ./target/release/parcsr watch "127.0.0.1:${admin_port}" --once \
    --out "${OUT}.closed_loop.c${clients}.scrape.txt" \
    || echo "warning: mid-run scrape failed for clients=${clients}" >&2
  wait "$driver"
done

# Worker-utilization / chunk-imbalance analysis of each Chrome trace
# (cargo xtask trace-analyze <trace> for the human-readable report).
echo "== trace analysis (worker utilization + chunk imbalance) =="
for trace in "${OUT}".*.trace.json; do
  cargo xtask trace-analyze "$trace" --json "${trace%.trace.json}.imbalance.json" \
    > "${trace%.trace.json}.imbalance.txt"
done

echo "results written to results/ with prefix ${RUN_ID} (incl. *.trace.json Chrome traces, *.stages.* breakdowns with memory sections, *.imbalance.json analyzer output, *.slo.json serving summaries with phase/exemplar blocks, *.scrape.txt mid-run admin-plane expositions, and *.scrape.txt.history window-ring scrapes)"
