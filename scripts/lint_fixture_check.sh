#!/usr/bin/env bash
# Runs the lint fixture-corpus self-test: every lint rule must still fire
# on its seeded reject fixtures and stay silent on the accept fixtures.
# Thin wrapper over `cargo xtask lint-fixtures` so CI and pre-commit hooks
# share one entry point.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo xtask lint-fixtures
