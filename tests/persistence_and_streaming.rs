//! Integration tests for the persistence and streaming paths: a packed CSR
//! survives a disk round-trip, the streaming packer matches the batch
//! pipeline on realistic workloads, and the weighted pipeline carries `vA`
//! end to end.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use parcsr::{BitPackedCsr, CsrBuilder, PackedCsrMode, StreamingCsrPacker, WeightedCsr};
use parcsr_graph::gen::{rmat, RmatParams};
use parcsr_graph::{paper_datasets, WeightedEdgeList};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("parcsr-integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn packed_csr_survives_disk_roundtrip_for_every_profile() {
    for profile in paper_datasets() {
        let graph = profile.synthesize(0.001, 11);
        let csr = CsrBuilder::new().build(&graph);
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let packed = BitPackedCsr::from_csr(&csr, mode, 4);
            let path = tmp(&format!("{}-{}.pcsr", profile.name, mode.name()));
            packed
                .write_to(&mut BufWriter::new(File::create(&path).unwrap()))
                .unwrap();
            let loaded =
                BitPackedCsr::read_from(&mut BufReader::new(File::open(&path).unwrap())).unwrap();
            assert_eq!(loaded, packed, "{} {}", profile.name, mode.name());
            // Spot queries on the loaded structure.
            for u in (0..csr.num_nodes() as u32).step_by(97) {
                assert_eq!(loaded.row(u), csr.neighbors(u));
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn streaming_packer_matches_batch_on_profile_workload() {
    let graph = paper_datasets()[3].synthesize(0.01, 21).sorted_by_source();
    let mut packer = StreamingCsrPacker::new(graph.num_nodes());
    for &(u, v) in graph.edges() {
        packer.push(u, v).expect("sorted stream");
    }
    let streamed = packer.finish();

    let csr = CsrBuilder::new().build_from_sorted(&graph).0;
    let batch = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 4);
    assert_eq!(streamed, batch);

    // And the streamed structure serializes like any other.
    let mut bytes = Vec::new();
    streamed.write_to(&mut bytes).unwrap();
    let loaded = BitPackedCsr::read_from(&mut bytes.as_slice()).unwrap();
    assert_eq!(loaded, streamed);
}

#[test]
fn weighted_pipeline_preserves_va_end_to_end() {
    let base = rmat(RmatParams::new(1 << 10, 1 << 14, 31));
    let weighted = WeightedEdgeList::from_unweighted(&base, 1000);
    let wcsr = WeightedCsr::from_edge_list(&weighted, 4);

    // Every (u, v, w) triple survives, attached to the right edge.
    for &(u, v, w) in weighted.edges().iter().step_by(53) {
        let (targets, weights) = wcsr.neighbors_weighted(u);
        let found = targets
            .iter()
            .zip(weights)
            .any(|(&t, &wt)| t == v && wt == w);
        assert!(found, "edge ({u}, {v}, {w}) lost its weight");
    }

    // The packed weight array is lossless and narrower than 32 bits.
    let packed = wcsr.pack_weights(4);
    assert_eq!(packed.len(), wcsr.num_edges());
    assert!(packed.width() <= 10);
}

#[test]
fn streaming_rejects_disorder_and_recovers_nothing() {
    let mut packer = StreamingCsrPacker::new(8);
    packer.push(2, 3).unwrap();
    assert!(packer.push(2, 1).is_err(), "regression within a row");
    assert!(packer.push(1, 7).is_err(), "regression across rows");
    // The rejected edges must not have been recorded.
    let packed = packer.finish();
    assert_eq!(packed.num_edges(), 1);
    assert_eq!(packed.row(2), [3]);
}
