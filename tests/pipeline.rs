//! End-to-end pipeline integration: SNAP text → edge list → parallel CSR →
//! bit-packed CSR → parallel queries, across all dataset profiles at small
//! scale — the exact flow the Table II harness measures.

use std::io::Cursor;

use parcsr::query::{edges_exist_batch, edges_exist_batch_binary, neighbors_batch};
use parcsr::{BitPackedCsr, Csr, CsrBuilder, PackedCsrMode};
use parcsr_graph::io::{read_edge_list, write_edge_list};
use parcsr_graph::{paper_datasets, DegreeStats};

#[test]
fn full_pipeline_on_every_dataset_profile() {
    for profile in paper_datasets() {
        // Small but non-trivial stand-in (~0.2% of published size).
        let graph = profile.synthesize(0.002, 1);
        assert!(graph.num_edges() > 100, "{}", profile.name);

        let csr = CsrBuilder::new().build(&graph);
        assert_eq!(csr.num_edges(), graph.num_edges(), "{}", profile.name);
        assert_eq!(csr.validate(), Ok(()), "{}", profile.name);

        let want = Csr::from_edge_list_sequential(&graph);
        assert_eq!(csr, want, "{}", profile.name);

        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
        assert!(
            packed.packed_bytes() < csr.heap_bytes(),
            "{}: packing must shrink the structure",
            profile.name
        );
        assert_eq!(packed.unpack(), csr, "{}", profile.name);
    }
}

#[test]
fn snap_text_roundtrip_feeds_the_builder() {
    let profile = &paper_datasets()[3];
    let graph = profile.synthesize(0.01, 5);

    // Serialize to SNAP text and parse it back, as a downloaded file would
    // be.
    let mut text = Vec::new();
    write_edge_list(&graph, &mut text).expect("serialize");
    let parsed = read_edge_list(Cursor::new(text)).expect("parse");
    // Node count can shrink (trailing isolated nodes are not visible in the
    // text format), but every edge must survive.
    assert_eq!(parsed.num_edges(), graph.num_edges());

    let from_parsed = CsrBuilder::new().build(&parsed);
    let from_original = CsrBuilder::new().build(&graph);
    for u in 0..parsed.num_nodes() as u32 {
        assert_eq!(from_parsed.neighbors(u), from_original.neighbors(u));
    }
}

#[test]
fn queries_on_packed_structures_match_plain_csr() {
    let graph = paper_datasets()[3].synthesize(0.005, 9);
    let csr = CsrBuilder::new().build(&graph);
    let n = csr.num_nodes() as u32;

    for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
        let packed = BitPackedCsr::from_csr(&csr, mode, 8);

        let node_queries: Vec<u32> = (0..200).map(|i| (i * 48271) % n).collect();
        let hoods = neighbors_batch(&packed, &node_queries, 4);
        for (i, &u) in node_queries.iter().enumerate() {
            assert_eq!(hoods[i], csr.neighbors(u), "{} u={u}", mode.name());
        }

        let edge_queries: Vec<(u32, u32)> = (0..400)
            .map(|i| ((i * 16807) % n, (i * 69621) % n))
            .collect();
        let want: Vec<bool> = edge_queries
            .iter()
            .map(|&(u, v)| csr.has_edge(u, v))
            .collect();
        assert_eq!(edges_exist_batch(&packed, &edge_queries, 4), want);
        assert_eq!(edges_exist_batch_binary(&packed, &edge_queries, 4), want);
    }
}

#[test]
fn synthetic_standins_have_social_network_shape() {
    // The substitution argument of DESIGN.md §2 depends on the stand-ins
    // being degree-skewed; pin that property.
    for profile in paper_datasets() {
        let graph = profile.synthesize(0.002, 3);
        let stats = DegreeStats::of(&graph);
        assert!(
            stats.gini > 0.35,
            "{}: expected heavy-tailed degrees, gini={}",
            profile.name,
            stats.gini
        );
        assert!(
            f64::from(stats.max_degree) > 8.0 * stats.mean_degree,
            "{}: hub-free stand-in (max {}, mean {})",
            profile.name,
            stats.max_degree,
            stats.mean_degree
        );
    }
}
