//! Temporal pipeline integration: toggle-event generation → parallel TCSR →
//! temporal queries, cross-checked against both the sequential replay and
//! the copy-per-frame representation, plus the differential-compression
//! size claim of Section IV.

use std::io::Cursor;

use parcsr_graph::gen::{temporal_toggles, TemporalParams};
use parcsr_graph::io::{read_temporal_edge_list, write_temporal_edge_list};
use parcsr_temporal::{AbsoluteFrames, FrameMode, TcsrBuilder};

#[test]
fn tcsr_agrees_with_replay_and_copy_baseline() {
    let events = temporal_toggles(TemporalParams::new(256, 3_000, 12, 21));
    let diff = TcsrBuilder::new().processors(4).build(&events);
    let copies = AbsoluteFrames::build(&events, 4);

    assert_eq!(diff.num_frames(), events.num_frames());
    assert_eq!(copies.num_frames(), events.num_frames());

    for t in 0..events.num_frames() as u32 {
        let replay = events.snapshot_at(t);
        assert_eq!(diff.snapshot_at(t), replay, "diff vs replay, frame {t}");
        assert_eq!(copies.snapshot_at(t), replay, "copies vs replay, frame {t}");
    }

    let last = (events.num_frames() - 1) as u32;
    for u in (0..256u32).step_by(13) {
        assert_eq!(
            diff.neighbors_at(u, last),
            copies.neighbors_at(u, last),
            "u={u}"
        );
        for v in (0..256u32).step_by(29) {
            assert_eq!(
                diff.edge_active_at(u, v, last),
                copies.edge_active_at(u, v, last),
                "({u},{v})"
            );
        }
    }
}

#[test]
fn snapshots_all_equals_frame_by_frame_reconstruction() {
    let events = temporal_toggles(TemporalParams::new(512, 6_000, 20, 31));
    let tcsr = TcsrBuilder::new().build(&events);
    let all = tcsr.snapshots_all(8);
    assert_eq!(all.len(), events.num_frames());
    for (t, snap) in all.iter().enumerate() {
        assert_eq!(snap, &events.snapshot_at(t as u32), "frame {t}");
    }
}

#[test]
fn temporal_io_roundtrip_feeds_the_builder() {
    let events = temporal_toggles(TemporalParams::new(128, 1_500, 8, 41));
    let mut text = Vec::new();
    write_temporal_edge_list(&events, &mut text).expect("serialize");
    let parsed = read_temporal_edge_list(Cursor::new(text)).expect("parse");
    assert_eq!(parsed.num_events(), events.num_events());

    let a = TcsrBuilder::new().build(&events);
    let b = TcsrBuilder::new().build(&parsed);
    let last = (events.num_frames() - 1) as u32;
    assert_eq!(a.snapshot_at(last), b.snapshot_at(last));
}

#[test]
fn differential_compression_beats_copies_on_slowly_evolving_graphs() {
    // The motivating regime: a large active graph with small per-frame
    // churn ("not all nodes have changed state from one time-frame to
    // another").
    let events =
        temporal_toggles(TemporalParams::new(2_048, 30_000, 32, 51).with_events_per_frame(64));
    let diff = TcsrBuilder::new().frame_mode(FrameMode::Gap).build(&events);
    let copies = AbsoluteFrames::build(&events, 4);
    assert!(
        diff.packed_bytes() * 4 < copies.packed_bytes(),
        "differential {} B should be ≤ 1/4 of copy-per-frame {} B",
        diff.packed_bytes(),
        copies.packed_bytes()
    );
}

#[test]
fn rapid_churn_shrinks_the_differential_advantage() {
    // Control for the claim above: when nearly everything toggles every
    // frame, differential storage approaches the copy strategy's size
    // (modulo constant factors) — the trade-off is workload-dependent.
    let slow = temporal_toggles(TemporalParams::new(512, 4_000, 16, 61).with_events_per_frame(16));
    let fast =
        temporal_toggles(TemporalParams::new(512, 4_000, 16, 61).with_events_per_frame(2_000));
    let slow_diff = TcsrBuilder::new().build(&slow).packed_bytes();
    let slow_abs = AbsoluteFrames::build(&slow, 2).packed_bytes();
    let fast_diff = TcsrBuilder::new().build(&fast).packed_bytes();
    let fast_abs = AbsoluteFrames::build(&fast, 2).packed_bytes();

    let slow_ratio = slow_diff as f64 / slow_abs as f64;
    let fast_ratio = fast_diff as f64 / fast_abs as f64;
    assert!(
        slow_ratio < fast_ratio,
        "differential advantage should shrink with churn: slow {slow_ratio:.3} vs fast {fast_ratio:.3}"
    );
}
