//! Chunk-policy equivalence: every build and query path must produce
//! bit-identical output under [`ChunkPolicy::Rows`] and
//! [`ChunkPolicy::Edges`] at every processor count — the property that
//! makes flipping the workspace default to edge-weighted chunking a pure
//! load-balance change.
//!
//! The generator is skew-biased on purpose: graphs can carry hub rows
//! (one node owning most edges), duplicate edges (multigraph rows), and
//! empty-node headroom, the three shapes where a weighted plan diverges
//! most from the count split.

use proptest::prelude::*;

use parcsr::query::{
    edges_exist_batch_binary_with_chunking, edges_exist_batch_with_chunking,
    neighbors_batch_with_chunking,
};
use parcsr::{degrees_parallel, BitPackedCsr, ChunkPolicy, Csr, CsrBuilder, PackedCsrMode};
use parcsr_graph::{EdgeList, NodeId, TemporalEdge, TemporalEdgeList};
use parcsr_temporal::TcsrBuilder;

/// The sweep the acceptance criteria pin: serial, small, odd, and
/// oversubscribed chunk counts.
const SWEEP: [usize; 4] = [1, 2, 7, 64];

/// Random edges plus up to two hub rows and a run of duplicate edges —
/// skew and multigraph rows in one generator. Can come out empty.
fn arb_skewed_graph() -> impl Strategy<Value = EdgeList> {
    (
        1u32..120,
        prop::collection::vec((0u32..120, 0u32..120), 0..250),
        0usize..3,
        0usize..100,
        0usize..20,
    )
        .prop_map(|(n_extra, edges, hubs, hub_degree, duplicates)| {
            let n = edges
                .iter()
                .map(|&(u, v)| u.max(v) + 1)
                .max()
                .unwrap_or(0)
                .max(n_extra);
            let mut edges: Vec<(NodeId, NodeId)> =
                edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            for hub in 0..hubs as u32 {
                let hub = hub % n;
                edges.extend((0..hub_degree).map(|i| (hub, i as u32 % n)));
            }
            if let Some(&(u, v)) = edges.first() {
                edges.extend(std::iter::repeat_n((u, v), duplicates));
            }
            EdgeList::new(n as usize, edges)
        })
}

fn build(g: &EdgeList, p: usize, policy: ChunkPolicy) -> Csr {
    CsrBuilder::new()
        .processors(p)
        .chunk_policy(policy)
        .build(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR construction (degree + scan + scatter) is policy-invariant.
    #[test]
    fn csr_build_is_policy_invariant(g in arb_skewed_graph()) {
        let want = Csr::from_edge_list_sequential(&g);
        for p in SWEEP {
            prop_assert_eq!(&build(&g, p, ChunkPolicy::Rows), &want, "rows p={}", p);
            prop_assert_eq!(&build(&g, p, ChunkPolicy::Edges), &want, "edges p={}", p);
        }
    }

    /// The parallel degree pass feeding the scan agrees with the
    /// sequential histogram regardless of how the CSR around it chunks.
    #[test]
    fn degree_pass_is_policy_invariant(g in arb_skewed_graph()) {
        let sorted = g.sorted_by_source();
        let want = g.degrees_sequential();
        for p in SWEEP {
            prop_assert_eq!(
                degrees_parallel(sorted.edges(), sorted.num_nodes(), p),
                want.clone(),
                "p={}", p
            );
        }
    }

    /// Bit-packed compression is policy-invariant in both modes.
    #[test]
    fn packed_build_is_policy_invariant(g in arb_skewed_graph()) {
        let csr = CsrBuilder::new().build(&g);
        for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
            let want = BitPackedCsr::from_csr_with_chunking(&csr, mode, 1, ChunkPolicy::Rows);
            for p in SWEEP {
                for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
                    prop_assert_eq!(
                        &BitPackedCsr::from_csr_with_chunking(&csr, mode, p, policy),
                        &want,
                        "mode={} p={} policy={}", mode.name(), p, policy.name()
                    );
                }
            }
        }
    }

    /// TCSR construction is policy-invariant (events fall back to the
    /// count split either way, but the knob must not change the output).
    #[test]
    fn tcsr_build_is_policy_invariant(
        events in prop::collection::vec((0u32..40, 0u32..40, 0u32..12), 0..300)
    ) {
        let events = TemporalEdgeList::new(
            40,
            events.into_iter().map(|(u, v, t)| TemporalEdge::new(u, v, t)).collect(),
        );
        let want = TcsrBuilder::new()
            .processors(1)
            .chunk_policy(ChunkPolicy::Rows)
            .build(&events);
        for p in SWEEP {
            for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
                let got = TcsrBuilder::new()
                    .processors(p)
                    .chunk_policy(policy)
                    .build(&events);
                prop_assert_eq!(&got, &want, "p={} policy={}", p, policy.name());
            }
        }
    }

    /// Query batches — neighborhoods and both edge-existence drivers — are
    /// policy-invariant on both the plain and the packed CSR, including
    /// batches front-loaded with hub queries.
    #[test]
    fn query_batches_are_policy_invariant(g in arb_skewed_graph()) {
        let csr = CsrBuilder::new().build(&g);
        let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
        let n = csr.num_nodes() as u32;
        // Hub-first query order maximizes the divergence between the
        // count split and the weighted split.
        let mut neighbor_queries: Vec<NodeId> = (0..n).collect();
        neighbor_queries.sort_by_key(|&u| std::cmp::Reverse(csr.degree(u)));
        let edge_queries: Vec<(NodeId, NodeId)> = neighbor_queries
            .iter()
            .map(|&u| (u, (u.wrapping_mul(31).wrapping_add(1)) % n.max(1)))
            .collect();

        let want_rows = neighbors_batch_with_chunking(&csr, &neighbor_queries, 1, ChunkPolicy::Rows);
        let want_exist =
            edges_exist_batch_with_chunking(&csr, &edge_queries, 1, ChunkPolicy::Rows);
        for p in SWEEP {
            for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
                let label = policy.name();
                prop_assert_eq!(
                    &neighbors_batch_with_chunking(&csr, &neighbor_queries, p, policy),
                    &want_rows, "csr neighbors p={} {}", p, label
                );
                prop_assert_eq!(
                    &neighbors_batch_with_chunking(&packed, &neighbor_queries, p, policy),
                    &want_rows, "packed neighbors p={} {}", p, label
                );
                prop_assert_eq!(
                    &edges_exist_batch_with_chunking(&csr, &edge_queries, p, policy),
                    &want_exist, "csr exist p={} {}", p, label
                );
                prop_assert_eq!(
                    &edges_exist_batch_with_chunking(&packed, &edge_queries, p, policy),
                    &want_exist, "packed exist p={} {}", p, label
                );
                prop_assert_eq!(
                    &edges_exist_batch_binary_with_chunking(&packed, &edge_queries, p, policy),
                    &want_exist, "packed binary p={} {}", p, label
                );
            }
        }
    }
}

/// The pinned degenerate shapes, outside proptest so they always run
/// exactly: empty graph, pure hub, duplicate-only rows.
#[test]
fn pinned_degenerate_graphs_are_policy_invariant() {
    let hub: Vec<(NodeId, NodeId)> = (0..500).map(|v| (0, v % 64)).collect();
    let graphs = [
        EdgeList::new(0, vec![]),
        EdgeList::new(64, vec![]),
        EdgeList::new(64, hub),
        EdgeList::new(3, vec![(1, 2); 40]),
    ];
    for (i, g) in graphs.iter().enumerate() {
        let want = Csr::from_edge_list_sequential(g);
        for p in SWEEP {
            for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
                let csr = build(g, p, policy);
                assert_eq!(csr, want, "graph {i} p={p} {}", policy.name());
                let queries: Vec<NodeId> = (0..g.num_nodes() as u32).collect();
                let rows = neighbors_batch_with_chunking(&csr, &queries, p, policy);
                for (u, row) in queries.iter().zip(&rows) {
                    assert_eq!(row, csr.neighbors(*u), "graph {i} p={p} u={u}");
                }
            }
        }
    }
}
