//! Cross-crate equivalence: every structure in the workspace that can
//! answer a query must answer it identically — CSR, bit-packed CSR (both
//! modes), adjacency list, bit matrix, and flat edge list.

use parcsr::{BitPackedCsr, CsrBuilder, NeighborSource, PackedCsrMode};
use parcsr_baseline::{AdjacencyList, AdjacencyMatrix, EdgeListStore, GraphStore};
use parcsr_graph::gen::{barabasi_albert, erdos_renyi, rmat, BaParams, ErParams, RmatParams};
use parcsr_graph::EdgeList;

fn check_all_structures(graph: &EdgeList, label: &str) {
    // The matrix collapses duplicate edges, so compare on the deduped graph.
    let graph = graph.deduped();
    let csr = CsrBuilder::new().build(&graph);
    let packed_raw = BitPackedCsr::from_csr(&csr, PackedCsrMode::Raw, 4);
    let packed_gap = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
    let adj = AdjacencyList::from_edge_list(&graph);
    let matrix = AdjacencyMatrix::from_edge_list(&graph);
    let flat = EdgeListStore::from_edge_list(&graph);

    let n = graph.num_nodes() as u32;
    let mut rows = [Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for u in (0..n).step_by((n as usize / 64).max(1)) {
        NeighborSource::row_into(&csr, u, &mut rows[0]);
        packed_raw.row_into(u, &mut rows[1]);
        packed_gap.row_into(u, &mut rows[2]);
        GraphStore::row_into(&adj, u, &mut rows[3]);
        GraphStore::row_into(&flat, u, &mut rows[4]);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r, &rows[0], "{label}: structure {i} row {u}");
        }
        let mut mrow = Vec::new();
        GraphStore::row_into(&matrix, u, &mut mrow);
        assert_eq!(mrow, rows[0], "{label}: matrix row {u}");

        for v in (0..n).step_by((n as usize / 48).max(1)) {
            let want = csr.has_edge(u, v);
            assert_eq!(packed_raw.has_edge(u, v), want, "{label} ({u},{v}) raw");
            assert_eq!(packed_gap.has_edge(u, v), want, "{label} ({u},{v}) gap");
            assert_eq!(
                GraphStore::has_edge(&adj, u, v),
                want,
                "{label} ({u},{v}) adj"
            );
            assert_eq!(
                GraphStore::has_edge(&matrix, u, v),
                want,
                "{label} ({u},{v}) mat"
            );
            assert_eq!(
                GraphStore::has_edge(&flat, u, v),
                want,
                "{label} ({u},{v}) flat"
            );
        }
    }
}

#[test]
fn equivalence_on_rmat() {
    let g = rmat(RmatParams::new(1 << 10, 12_000, 11));
    check_all_structures(&g, "rmat");
}

#[test]
fn equivalence_on_erdos_renyi() {
    let g = erdos_renyi(ErParams::new(900, 9_000, 13));
    check_all_structures(&g, "er");
}

#[test]
fn equivalence_on_barabasi_albert() {
    let g = barabasi_albert(BaParams::new(800, 4, 17));
    check_all_structures(&g, "ba");
}

#[test]
fn equivalence_on_symmetrized_graph() {
    // Undirected social-network encoding: every edge mirrored.
    let g = rmat(RmatParams::new(512, 4_000, 23)).symmetrized();
    check_all_structures(&g, "symmetrized");
}

#[test]
fn size_ordering_matches_the_papers_story() {
    // On a sparse million-edge-scale graph: matrix >> adjacency list >
    // raw CSR > packed CSR. This is the quantitative claim behind Table II's
    // size columns.
    let g = rmat(RmatParams::new(1 << 13, 1 << 17, 29)).deduped();
    let csr = CsrBuilder::new().build(&g);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
    let adj = AdjacencyList::from_edge_list(&g);
    let matrix = AdjacencyMatrix::from_edge_list(&g);

    assert!(matrix.heap_bytes() > adj.heap_bytes());
    assert!(adj.heap_bytes() > csr.heap_bytes());
    assert!(csr.heap_bytes() > packed.packed_bytes());
}
