//! Thread/processor invariance: every parallel routine in the workspace
//! must produce bit-identical output for every processor count and pool
//! width — the property that makes the Table II sweep a pure performance
//! experiment.

use parcsr::query::{edges_exist_batch, neighbors_batch};
use parcsr::{with_processors, BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_bitpack::pack_parallel;
use parcsr_graph::gen::{rmat, temporal_toggles, RmatParams, TemporalParams};
use parcsr_scan::{ScanAlgorithm, Scanner};
use parcsr_temporal::TcsrBuilder;

/// The paper's processor sweep, including oversubscription (64 > host
/// cores, as on the authors' 32-core machine).
const SWEEP: [usize; 5] = [1, 4, 8, 16, 64];

#[test]
fn csr_construction_is_processor_invariant() {
    let graph = rmat(RmatParams::new(1 << 12, 1 << 16, 3));
    let base = with_processors(1, || CsrBuilder::new().processors(1).build(&graph));
    for p in SWEEP {
        let csr = with_processors(p, || CsrBuilder::new().processors(p).build(&graph));
        assert_eq!(csr, base, "p={p}");
    }
}

#[test]
fn packing_is_processor_invariant() {
    let graph = rmat(RmatParams::new(1 << 11, 1 << 14, 5));
    let csr = CsrBuilder::new().build(&graph);
    for mode in [PackedCsrMode::Raw, PackedCsrMode::Gap] {
        let base = BitPackedCsr::from_csr(&csr, mode, 1);
        for p in SWEEP {
            let packed = with_processors(p, || BitPackedCsr::from_csr(&csr, mode, p));
            assert_eq!(packed, base, "p={p} mode={}", mode.name());
        }
    }
}

#[test]
fn raw_pack_is_processor_invariant() {
    let values: Vec<u64> = (0..100_000u64).map(|i| (i * 2654435761) % 99_991).collect();
    let base = pack_parallel(&values, 1);
    for p in SWEEP {
        assert_eq!(pack_parallel(&values, p), base, "p={p}");
    }
}

#[test]
fn scans_are_processor_invariant() {
    let data: Vec<u64> = (0..50_000u64).map(|i| i % 1000).collect();
    let mut base = data.clone();
    Scanner::with_chunks(ScanAlgorithm::Sequential, 1).inclusive_scan_in_place(&mut base);
    for alg in ScanAlgorithm::ALL {
        for p in SWEEP {
            let mut v = data.clone();
            with_processors(p.min(16), || {
                Scanner::with_chunks(alg, p).inclusive_scan_in_place(&mut v);
            });
            assert_eq!(v, base, "{} p={p}", alg.name());
        }
    }
}

#[test]
fn queries_are_processor_invariant() {
    let graph = rmat(RmatParams::new(1 << 11, 1 << 14, 7));
    let csr = CsrBuilder::new().build(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 4);
    let n = csr.num_nodes() as u32;
    let node_queries: Vec<u32> = (0..500).map(|i| (i * 48271) % n).collect();
    let edge_queries: Vec<(u32, u32)> = (0..500).map(|i| ((i * 31) % n, (i * 17) % n)).collect();

    let hoods_base = neighbors_batch(&packed, &node_queries, 1);
    let exists_base = edges_exist_batch(&packed, &edge_queries, 1);
    for p in SWEEP {
        with_processors(p.min(16), || {
            assert_eq!(
                neighbors_batch(&packed, &node_queries, p),
                hoods_base,
                "p={p}"
            );
            assert_eq!(
                edges_exist_batch(&packed, &edge_queries, p),
                exists_base,
                "p={p}"
            );
        });
    }
}

#[test]
fn tcsr_is_processor_invariant() {
    let events = temporal_toggles(TemporalParams::new(1 << 10, 1 << 13, 16, 9));
    let base = with_processors(1, || TcsrBuilder::new().processors(1).build(&events));
    for p in SWEEP {
        let tcsr = with_processors(p.min(16), || {
            TcsrBuilder::new().processors(p).build(&events)
        });
        assert_eq!(tcsr, base, "p={p}");
        let last = (tcsr.num_frames() - 1) as u32;
        assert_eq!(tcsr.snapshot_at(last), base.snapshot_at(last), "p={p}");
        for q in [1, 3, 8] {
            assert_eq!(tcsr.snapshots_all(q), base.snapshots_all(1), "p={p} q={q}");
        }
    }
}

#[test]
fn generators_are_pool_width_invariant() {
    // Graph generation itself parallelizes; the synthetic datasets must not
    // depend on the pool width either.
    let base = with_processors(1, || rmat(RmatParams::new(1 << 10, 1 << 14, 11)));
    for p in [2, 8, 32] {
        let g = with_processors(p, || rmat(RmatParams::new(1 << 10, 1 << 14, 11)));
        assert_eq!(g, base, "p={p}");
    }
}
