//! The structure zoo: one graph, every representation in the workspace.
//!
//! Builds the same synthetic social network into the paper's structures
//! (CSR, bit-packed CSR) and the related-work structures from Section II
//! (adjacency matrix/list, flat edge list, k²-tree, wavelet-tree-augmented
//! CSR, PMA-backed dynamic CSR), then prints a size/latency comparison —
//! the time-space trade-off landscape the paper is positioned in.
//!
//! ```text
//! cargo run --release -p parcsr --example structure_zoo
//! ```

use std::time::Instant;

use parcsr::{BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_baseline::{AdjacencyList, AdjacencyMatrix, EdgeListStore, GraphStore};
use parcsr_dynamic::DynamicCsr;
use parcsr_graph::gen::{rmat, RmatParams};
use parcsr_succinct::{K2Tree, WaveletTree};

fn main() {
    let n = 1 << 13;
    let m = 1 << 17;
    let graph = rmat(RmatParams::new(n, m, 42)).deduped();
    println!(
        "one graph, every structure: {} nodes, {} distinct edges\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    let csr = CsrBuilder::new().build(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, rayon::current_num_threads());
    let adj = AdjacencyList::from_edge_list(&graph);
    let matrix = AdjacencyMatrix::from_edge_list(&graph);
    let flat = EdgeListStore::from_edge_list(&graph);
    let k2 = K2Tree::from_edges(graph.num_nodes(), graph.edges());
    let columns: Vec<u32> = csr.targets().to_vec();
    let wavelet = WaveletTree::new(&columns, graph.num_nodes() as u32);
    let dynamic = DynamicCsr::from_edge_list(&graph);

    // A probe workload: 100k edge-existence checks, half hits.
    let probes: Vec<(u32, u32)> = (0..100_000usize)
        .map(|i| {
            if i % 2 == 0 {
                graph.edges()[(i * 31) % graph.num_edges()]
            } else {
                (((i * 48271) % n) as u32, ((i * 16807) % n) as u32)
            }
        })
        .collect();

    println!("{:<22} {:>12} {:>14}", "structure", "bytes", "100k probes");
    row("adjacency matrix", matrix.heap_bytes(), || {
        probes
            .iter()
            .filter(|&&(u, v)| matrix.has_edge(u, v))
            .count()
    });
    row("adjacency list", adj.heap_bytes(), || {
        probes.iter().filter(|&&(u, v)| adj.has_edge(u, v)).count()
    });
    row("edge list (sorted)", flat.heap_bytes(), || {
        probes.iter().filter(|&&(u, v)| flat.has_edge(u, v)).count()
    });
    row("csr", csr.heap_bytes(), || {
        probes.iter().filter(|&&(u, v)| csr.has_edge(u, v)).count()
    });
    row("bit-packed csr", packed.packed_bytes(), || {
        probes
            .iter()
            .filter(|&&(u, v)| packed.has_edge(u, v))
            .count()
    });
    row("k2-tree", k2.packed_bytes(), || {
        probes.iter().filter(|&&(u, v)| k2.has_edge(u, v)).count()
    });
    row("pcsr (dynamic)", 0, || {
        probes
            .iter()
            .filter(|&&(u, v)| dynamic.has_edge(u, v))
            .count()
    });

    // The wavelet tree answers a different question: in-neighbors without a
    // transpose.
    let v = graph.edges()[0].1;
    let t = Instant::now();
    let in_deg = wavelet.count(v);
    let mut in_neighbors = Vec::with_capacity(in_deg);
    for k in 0..in_deg {
        let pos = wavelet.select(v, k).expect("k < count");
        let u = csr.offsets().partition_point(|&o| o <= pos as u64) - 1;
        in_neighbors.push(u as u32);
    }
    println!(
        "\nwavelet tree over jA: in-neighbors({v}) -> {} sources in {:.2} ms (no transpose built)",
        in_neighbors.len(),
        t.elapsed().as_secs_f64() * 1e3
    );
    let k2_col = k2.column(v);
    in_neighbors.sort_unstable();
    in_neighbors.dedup();
    assert_eq!(in_neighbors, k2_col, "wavelet and k2-tree must agree");
    println!("k2-tree column({v}) agrees ✓");
}

fn row(name: &str, bytes: usize, probe: impl FnOnce() -> usize) {
    let t = Instant::now();
    let hits = probe();
    let ms = t.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(hits);
    if bytes > 0 {
        println!("{name:<22} {bytes:>12} {ms:>11.1} ms");
    } else {
        println!("{name:<22} {:>12} {ms:>11.1} ms", "-");
    }
}
