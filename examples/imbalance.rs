//! Load-imbalance study on a skewed hub graph: measure per-stage worker
//! utilization with `parcsr_obs::analyze`, then A/B the gap-encode chunk
//! policy — split rows by *row count* (the historical default) vs. by
//! *edge count* — and report the straggler gap the hubs cause.
//!
//! The graph is adversarial on purpose: a block of 64 hub rows carries
//! about half of all edges, so an equal-rows split hands one worker the
//! whole hub block plus its share of ordinary rows while the rest finish
//! early and idle at the join. An edge-count split spreads the hub block
//! across workers.
//!
//! A second section runs the same A/B over a hub-heavy Algorithm 6/7
//! query mix: a batch front-loaded with hub-row queries, split by query
//! count vs. by per-query `degree + 1` weight.
//!
//! ```text
//! cargo run --release -p parcsr --features parcsr-obs/enabled --example imbalance
//! ```
//!
//! Without the obs feature the pipeline still runs, but no spans are
//! recorded and the analyzer has nothing to report. Measured results are
//! recorded in EXPERIMENTS.md ("Chunk-policy imbalance study").

use std::time::Instant;

use parcsr::query::{edges_exist_batch_binary_with_chunking, neighbors_batch_with_chunking};
use parcsr::{with_processors, BitPackedCsr, ChunkPolicy, CsrBuilder, PackedCsrMode};
use parcsr_graph::{EdgeList, NodeId};
use parcsr_obs::analyze::{analyze_records, chunk_stats, ChunkStats, TraceAnalysis};

/// Nodes in the graph.
const NODES: u32 = 200_000;
/// Out-degree of every ordinary node.
const PER_NODE: u32 = 5;
/// Hub rows (nodes `0..HUB_ROWS`), packed at the front of row space.
const HUB_ROWS: u32 = 64;
/// Extra out-edges per hub row; the block totals ~50% of all edges.
const HUB_DEGREE: u32 = 16_000;
/// Timing repetitions per cell; the fastest rep's spans are analyzed.
const REPS: usize = 3;
/// Queries per batch in the Algorithm 6/7 mix.
const QUERY_BATCH: usize = 2_048;

/// Deterministic skewed graph: every node emits `PER_NODE` edges to
/// LCG-scattered targets, and each of the first `HUB_ROWS` nodes
/// additionally fans out to `HUB_DEGREE` distinct targets.
fn hub_graph() -> EdgeList {
    let mut edges = Vec::with_capacity((NODES * PER_NODE + HUB_ROWS * HUB_DEGREE) as usize);
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = |bound: u32| {
        // MMIX LCG; the top bits scatter targets well enough for a
        // synthetic workload.
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((state >> 33) % u64::from(bound)) as u32
    };
    for u in 0..NODES {
        for _ in 0..PER_NODE {
            edges.push((u, next(NODES)));
        }
    }
    for hub in 0..HUB_ROWS {
        for i in 0..HUB_DEGREE {
            edges.push((hub, (hub + 1 + i) % NODES));
        }
    }
    EdgeList::new(NODES as usize, edges)
}

/// One measured cell: fastest-of-`REPS` build+pack, with the fastest rep's
/// spans analyzed. Returns (pipeline wall ms, analysis).
fn measure(sorted: &EdgeList, p: usize, policy: ChunkPolicy) -> (f64, TraceAnalysis) {
    with_processors(p, || {
        let mut best = f64::INFINITY;
        let mut best_spans = Vec::new();
        for _ in 0..REPS {
            let t = Instant::now();
            let (csr, _) = CsrBuilder::new()
                .processors(p)
                .chunk_policy(policy)
                .build_from_sorted(sorted);
            let packed = BitPackedCsr::from_csr_with_chunking(&csr, PackedCsrMode::Gap, p, policy);
            let elapsed = t.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box(&packed);
            let spans = parcsr_obs::drain();
            if elapsed < best {
                best = elapsed;
                best_spans = spans;
            }
        }
        (best, analyze_records(&best_spans))
    })
}

/// Hub-heavy Algorithm 6/7 batch: every hub row is queried four times at
/// the front of the batch, the tail samples ordinary nodes. A count split
/// hands the entire hub prefix to the first workers; the `degree + 1`
/// weighted split spreads it.
fn hub_heavy_queries() -> (Vec<NodeId>, Vec<(NodeId, NodeId)>) {
    let hub_prefix = HUB_ROWS as usize * 4;
    let mut neighbors = Vec::with_capacity(QUERY_BATCH);
    for i in 0..QUERY_BATCH {
        if i < hub_prefix {
            neighbors.push(i as u32 % HUB_ROWS);
        } else {
            neighbors.push(HUB_ROWS + (i as u32 * 97) % (NODES - HUB_ROWS));
        }
    }
    let edges = neighbors
        .iter()
        .map(|&u| (u, (u.wrapping_mul(31).wrapping_add(7)) % NODES))
        .collect();
    (neighbors, edges)
}

/// One measured query cell: fastest-of-`REPS` runs of an Algorithm 6
/// neighborhood batch plus an Algorithm 7 binary edge-existence batch on
/// the packed CSR, with the fastest rep's spans analyzed.
fn measure_queries(
    packed: &BitPackedCsr,
    neighbor_queries: &[NodeId],
    edge_queries: &[(NodeId, NodeId)],
    p: usize,
    policy: ChunkPolicy,
) -> (f64, TraceAnalysis) {
    with_processors(p, || {
        let mut best = f64::INFINITY;
        let mut best_spans = Vec::new();
        for _ in 0..REPS {
            let t = Instant::now();
            let rows = neighbors_batch_with_chunking(packed, neighbor_queries, p, policy);
            let exist = edges_exist_batch_binary_with_chunking(packed, edge_queries, p, policy);
            let elapsed = t.elapsed().as_secs_f64() * 1e3;
            std::hint::black_box((&rows, &exist));
            let spans = parcsr_obs::drain();
            if elapsed < best {
                best = elapsed;
                best_spans = spans;
            }
        }
        (best, analyze_records(&best_spans))
    })
}

/// Chunk statistics of one kind of chunk span, pooled over the instances of
/// one stage. Narrower than the analyzer's stage-level stats, which pool
/// every chunk span inside the instance window (e.g. the fixed-width
/// `bitpack.chunk` spans inside `pack`, which the policy does not touch).
fn pooled_chunk_stats(
    analysis: &TraceAnalysis,
    stage: &str,
    chunk_name: &str,
) -> Option<ChunkStats> {
    let obs: Vec<_> = analysis
        .instances
        .iter()
        .filter(|i| i.name == stage)
        .flat_map(|i| i.chunks.iter())
        .filter(|c| c.name == chunk_name)
        .cloned()
        .collect();
    chunk_stats(&obs)
}

/// Edge-count skew of one kind of chunk span: max/mean of the `edges`
/// payload. Purely a function of how the policy cut the work, so it is
/// deterministic even when chunk *durations* are noisy (e.g. oversubscribed
/// cores).
fn edge_payload_skew(analysis: &TraceAnalysis, stage: &str, chunk_name: &str) -> Option<f64> {
    let edges: Vec<f64> = analysis
        .instances
        .iter()
        .filter(|i| i.name == stage)
        .flat_map(|i| i.chunks.iter())
        .filter(|c| c.name == chunk_name)
        .filter_map(|c| c.edges)
        .map(|e| e as f64)
        .collect();
    if edges.is_empty() {
        return None;
    }
    let mean = edges.iter().sum::<f64>() / edges.len() as f64;
    let max = edges.iter().cloned().fold(0.0f64, f64::max);
    (mean > 0.0).then(|| max / mean)
}

/// Gap-encode chunk statistics (the spans the build-side policy controls).
fn encode_chunk_stats(analysis: &TraceAnalysis) -> Option<ChunkStats> {
    pooled_chunk_stats(analysis, "pack", "pack.encode.chunk")
}

/// Gap-encode edge skew.
fn edge_skew(analysis: &TraceAnalysis) -> Option<f64> {
    edge_payload_skew(analysis, "pack", "pack.encode.chunk")
}

fn print_cell(p: usize, policy: ChunkPolicy, wall_ms: f64, analysis: &TraceAnalysis) {
    println!("p={p} policy={:<5} pipeline {wall_ms:.2} ms", policy.name());
    for stage in &analysis.stages {
        print!(
            "  {:<10} util {:.3}  cp {:.3}",
            stage.name, stage.utilization, stage.critical_path_ratio
        );
        if let Some(c) = &stage.chunks {
            print!(
                "  chunks: cv {:.2}, max {:.2} ms (t{} c{})",
                c.cv,
                c.max_ns as f64 / 1e6,
                c.straggler_tid,
                c.straggler_chunk
            );
        }
        println!();
    }
    if let Some(c) = encode_chunk_stats(analysis) {
        print!(
            "  encode chunks: cv {:.2}, mean {:.2} ms, straggler {:.2} ms (t{} c{})",
            c.cv,
            c.mean_ns / 1e6,
            c.max_ns as f64 / 1e6,
            c.straggler_tid,
            c.straggler_chunk
        );
        if let Some(r) = c.corr_edges {
            print!(", r(edges) {r:+.2}");
        }
        if let Some(skew) = edge_skew(analysis) {
            print!(", edge skew {skew:.2}x");
        }
        println!();
    }
}

fn print_query_cell(p: usize, policy: ChunkPolicy, wall_ms: f64, analysis: &TraceAnalysis) {
    println!(
        "p={p} policy={:<5} query batches {wall_ms:.2} ms",
        policy.name()
    );
    for (stage, chunk) in [
        ("query.neighbors", "query.neighbors.chunk"),
        ("query.edges", "query.edges.chunk"),
    ] {
        if let (Some(c), Some(skew)) = (
            pooled_chunk_stats(analysis, stage, chunk),
            edge_payload_skew(analysis, stage, chunk),
        ) {
            println!(
                "  {stage:<16} chunks: cv {:.2}, straggler {:.2} ms (t{} c{}), edge skew {skew:.2}x",
                c.cv,
                c.max_ns as f64 / 1e6,
                c.straggler_tid,
                c.straggler_chunk,
            );
        }
    }
}

fn main() {
    if !parcsr_obs::compiled() {
        eprintln!(
            "note: built without span recording; rerun with \
             --features parcsr-obs/enabled to measure utilization"
        );
    }
    parcsr_obs::set_enabled(true);

    let graph = hub_graph();
    let sorted = graph.sorted_by_source();
    let _ = parcsr_obs::drain();
    println!(
        "hub graph: {} nodes, {} edges, {} hub rows carrying {:.1}% of edges\n",
        graph.num_nodes(),
        graph.num_edges(),
        HUB_ROWS,
        f64::from(HUB_ROWS * HUB_DEGREE) / graph.num_edges() as f64 * 100.0
    );

    for p in [2usize, 8] {
        let mut cells = Vec::new();
        for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
            let (wall_ms, analysis) = measure(&sorted, p, policy);
            print_cell(p, policy, wall_ms, &analysis);
            cells.push((encode_chunk_stats(&analysis), edge_skew(&analysis)));
        }
        match &cells[..] {
            [(Some(c_rows), Some(s_rows)), (Some(c_edges), Some(s_edges))] => {
                println!(
                    "  -> encode straggler {:.2} ms (rows) vs {:.2} ms (edges), \
                     edge skew {s_rows:.2}x vs {s_edges:.2}x\n",
                    c_rows.max_ns as f64 / 1e6,
                    c_edges.max_ns as f64 / 1e6,
                );
            }
            _ => println!("  -> no pack spans recorded (obs feature off?)\n"),
        }
    }

    // Query-side A/B on the same graph: a hub-heavy Algorithm 6/7 mix
    // against the packed CSR. The batch split is the only variable; the
    // results are policy-invariant (see tests/chunk_policy_equivalence.rs).
    let (csr, _) = CsrBuilder::new().build_from_sorted(&sorted);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, 8);
    let (neighbor_queries, edge_queries) = hub_heavy_queries();
    let _ = parcsr_obs::drain();
    println!(
        "query mix: {} neighborhood + {} edge-existence queries, hub rows front-loaded\n",
        neighbor_queries.len(),
        edge_queries.len()
    );
    for p in [2usize, 8] {
        let mut skews = Vec::new();
        for policy in [ChunkPolicy::Rows, ChunkPolicy::Edges] {
            let (wall_ms, analysis) =
                measure_queries(&packed, &neighbor_queries, &edge_queries, p, policy);
            print_query_cell(p, policy, wall_ms, &analysis);
            skews.push((
                edge_payload_skew(&analysis, "query.neighbors", "query.neighbors.chunk"),
                edge_payload_skew(&analysis, "query.edges", "query.edges.chunk"),
            ));
        }
        match &skews[..] {
            [(Some(n_rows), Some(e_rows)), (Some(n_edges), Some(e_edges))] => println!(
                "  -> neighbors edge skew {n_rows:.2}x vs {n_edges:.2}x, \
                 edge-exists {e_rows:.2}x vs {e_edges:.2}x (rows vs edges)\n"
            ),
            _ => println!("  -> no query spans recorded (obs feature off?)\n"),
        }
    }
    parcsr_obs::set_enabled(false);
}
