//! Compress a SNAP edge-list file into a bit-packed CSR and report the
//! sizes — the operational task Table II measures. With no argument, a
//! synthetic WebNotreDame-profile graph is written to a temp file first, so
//! the example is runnable offline.
//!
//! ```text
//! cargo run --release -p parcsr --example compress_file [path/to/snap.txt]
//! ```

use std::time::Instant;

use parcsr::{BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_graph::io::{read_edge_list_file, write_edge_list_file};
use parcsr_graph::paper_datasets;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            // Synthesize a stand-in and round-trip it through the SNAP text
            // format, as if it had been downloaded.
            let profile = &paper_datasets()[3]; // WebNotreDame
            let graph = profile.synthesize(0.25, 42);
            let path = std::env::temp_dir().join("parcsr-example-webnotredame.txt");
            write_edge_list_file(&graph, &path).expect("write temp snap file");
            println!(
                "no input given — synthesized {} quarter-scale stand-in at {}",
                profile.name,
                path.display()
            );
            path.to_string_lossy().into_owned()
        }
    };

    let t = Instant::now();
    let graph = match read_edge_list_file(&path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "parsed {} nodes / {} edges in {:.1} ms",
        graph.num_nodes(),
        graph.num_edges(),
        t.elapsed().as_secs_f64() * 1e3
    );

    let p = rayon::current_num_threads();
    let t = Instant::now();
    let (csr, timings) = CsrBuilder::new().build_timed(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, p);
    let total_ms = t.elapsed().as_secs_f64() * 1e3;

    let text_bytes = std::fs::metadata(&path)
        .map(|m| m.len() as usize)
        .unwrap_or(0);
    println!("compressed with {p} processors in {total_ms:.1} ms:");
    println!(
        "  sort {:.1} ms, degrees {:.1} ms, scan {:.1} ms, fill {:.1} ms, pack {:.1} ms",
        timings.sort_ms,
        timings.degree_ms,
        timings.scan_ms,
        timings.fill_ms,
        total_ms - timings.total_ms(),
    );
    println!("  edge list (text file):   {:>12} bytes", text_bytes);
    println!(
        "  edge list (in memory):   {:>12} bytes",
        graph.binary_bytes()
    );
    println!("  CSR (uncompressed):      {:>12} bytes", csr.heap_bytes());
    println!(
        "  CSR (bit-packed):        {:>12} bytes  ({}-bit columns, {}-bit offsets)",
        packed.packed_bytes(),
        packed.column_width(),
        packed.offset_width()
    );
    println!(
        "  compression vs text:     {:>11.1}x",
        text_bytes as f64 / packed.packed_bytes() as f64
    );

    // Prove the compressed structure still answers queries.
    let sample: Vec<u32> = (0..5.min(graph.num_nodes() as u32)).collect();
    for u in sample {
        let row = packed.row(u);
        let preview: Vec<u32> = row.iter().copied().take(6).collect();
        println!(
            "  row({u}) = {preview:?}{}",
            if row.len() > 6 { " …" } else { "" }
        );
    }
}
