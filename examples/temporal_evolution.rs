//! Time-evolving graph scenario (Figures 4–5): a graph evolving across
//! frames, stored as a parallel differential TCSR, queried at any point in
//! time, and compared against the copy-per-frame baseline.
//!
//! ```text
//! cargo run --release -p parcsr --example temporal_evolution
//! ```

use parcsr_graph::gen::{temporal_toggles, TemporalParams};
use parcsr_graph::{TemporalEdge, TemporalEdgeList};
use parcsr_temporal::{AbsoluteFrames, TcsrBuilder};

fn main() {
    figure_4_walkthrough();
    differential_at_scale();
}

/// The 4-frame evolution of Figure 4, stored differentially.
fn figure_4_walkthrough() {
    println!("== Figure 4: a graph evolving over 4 time-frames ==");
    let events = TemporalEdgeList::new(
        5,
        vec![
            // T0: initial edges.
            TemporalEdge::new(0, 1, 0),
            TemporalEdge::new(1, 2, 0),
            TemporalEdge::new(2, 3, 0),
            // T1: (1,2) deleted (red), (3,4) added (dotted).
            TemporalEdge::new(1, 2, 1),
            TemporalEdge::new(3, 4, 1),
            // T2: (0,1) deleted.
            TemporalEdge::new(0, 1, 2),
            // T3: (1,2) re-added.
            TemporalEdge::new(1, 2, 3),
        ],
    );
    let tcsr = TcsrBuilder::new().build(&events);
    for t in 0..tcsr.num_frames() as u32 {
        println!(
            "  T{t}: Δ = {:?}  →  active edges = {:?}",
            tcsr.frame(t).decode_edges(),
            tcsr.snapshot_at(t)
        );
    }
    println!(
        "  (1,2) active at T1? {}   at T3? {}\n",
        tcsr.edge_active_at(1, 2, 1),
        tcsr.edge_active_at(1, 2, 3)
    );
}

/// A Wikipedia-edit-style workload: many frames, small per-frame churn —
/// where differential storage shines.
fn differential_at_scale() {
    println!("== Differential vs copy-per-frame storage ==");
    let events =
        temporal_toggles(TemporalParams::new(1 << 12, 1 << 15, 48, 11).with_events_per_frame(256));
    println!(
        "workload: {} nodes, {} toggle events across {} frames",
        events.num_nodes(),
        events.num_events(),
        events.num_frames()
    );

    let t = std::time::Instant::now();
    let diff = TcsrBuilder::new().build(&events);
    let diff_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = std::time::Instant::now();
    let absolute = AbsoluteFrames::build(&events, rayon::current_num_threads());
    let abs_ms = t.elapsed().as_secs_f64() * 1e3;

    println!(
        "differential TCSR: {:>10} bytes, built in {diff_ms:.1} ms",
        diff.packed_bytes()
    );
    println!(
        "copy-per-frame:    {:>10} bytes, built in {abs_ms:.1} ms",
        absolute.packed_bytes()
    );
    println!(
        "differential uses {:.1}% of the copy strategy's space",
        diff.packed_bytes() as f64 / absolute.packed_bytes() as f64 * 100.0
    );

    // Cross-check a few queries between the two representations.
    let last = (diff.num_frames() - 1) as u32;
    let mid = last / 2;
    for &t in &[0, mid, last] {
        assert_eq!(
            diff.snapshot_at(t).len(),
            absolute.snapshot_at(t).len(),
            "representations disagree at frame {t}"
        );
    }
    println!(
        "snapshots agree at frames 0, {mid}, {last}: {} / {} / {} active edges ✓",
        diff.active_edge_count_at(0),
        diff.active_edge_count_at(mid),
        diff.active_edge_count_at(last)
    );

    // Reconstruct the full history with the symmetric-difference scan.
    let t = std::time::Instant::now();
    let all = diff.snapshots_all(rayon::current_num_threads());
    println!(
        "all {} snapshots reconstructed via the Δ-scan in {:.1} ms",
        all.len(),
        t.elapsed().as_secs_f64() * 1e3
    );
}
