//! Walkthrough of the paper's didactic figures on its own examples:
//!
//! * Figure 1: the CSR arrays of the 10-node graph of Table I;
//! * Figure 2: the chunked parallel prefix sum, phase by phase;
//! * Figure 3: the per-chunk degree computation with the side array.
//!
//! ```text
//! cargo run --release -p parcsr --example walkthrough
//! ```

use parcsr::{degrees_parallel, CsrBuilder};
use parcsr_graph::EdgeList;
use parcsr_scan::{chunk_ranges, inclusive_scan_seq};

fn main() {
    figure_1();
    figure_2();
    figure_3();
}

/// The Table I adjacency matrix as an edge list, and its CSR (Figure 1).
fn figure_1() {
    println!("== Figure 1: CSR of the Table I graph ==");
    let graph = EdgeList::new(
        10,
        vec![
            (0, 5),
            (1, 6),
            (1, 7),
            (2, 7),
            (3, 8),
            (3, 9),
            (4, 9),
            (5, 0),
            (6, 1),
            (7, 1),
            (7, 2),
            (8, 2),
            (8, 3),
            (9, 3),
        ],
    );
    let csr = CsrBuilder::new().build(&graph);
    println!("  iA (offsets):  {:?}", csr.offsets());
    println!("  jA (columns):  {:?}", csr.targets());
    for u in 0..10u32 {
        println!("  neighbors({u}) = {:?}", csr.neighbors(u));
    }
    println!();
}

/// The chunked scan of Figure 2, with each phase printed.
fn figure_2() {
    println!("== Figure 2: chunked parallel prefix sum ==");
    let mut v: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
    let chunks = 4;
    let ranges = chunk_ranges(v.len(), chunks);
    println!("  input:          {v:?}");
    println!("  chunks:         {ranges:?}");

    // Phase 1: per-chunk inclusive scans.
    for r in &ranges {
        let mut acc = 0u64;
        for x in &mut v[r.clone()] {
            acc += *x;
            *x = acc;
        }
    }
    println!("  after phase 1:  {v:?}   (each chunk scanned independently)");

    // Phase 2: serialized carry across chunk tails (the Lock() region).
    for w in ranges.windows(2) {
        v[w[1].end - 1] += v[w[0].end - 1];
    }
    println!("  after phase 2:  {v:?}   (chunk tails carry the global prefix)");

    // Phase 3: each chunk adds its predecessor's tail to the rest.
    let carries: Vec<u64> = ranges[..ranges.len() - 1]
        .iter()
        .map(|r| v[r.end - 1])
        .collect();
    for (r, carry) in ranges[1..].iter().zip(carries) {
        for x in &mut v[r.start..r.end - 1] {
            *x += carry;
        }
    }
    println!("  after phase 3:  {v:?}");

    let mut check: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
    inclusive_scan_seq(&mut check);
    assert_eq!(v, check, "walkthrough must match the sequential scan");
    println!("  matches the sequential prefix sum ✓\n");
}

/// The per-chunk degree computation of Figure 3.
fn figure_3() {
    println!("== Figure 3: parallel degree computation ==");
    // A sorted edge array whose node runs straddle chunk boundaries.
    let edges: Vec<(u32, u32)> = vec![
        (0, 1),
        (0, 2),
        (1, 0),
        (1, 2), // <- chunk boundary inside node 1's run
        (1, 3),
        (2, 0),
        (3, 1),
        (3, 2), // <- chunk boundary at node 3's run start
        (3, 4),
        (5, 0),
        (5, 1),
        (5, 2),
    ];
    let sources: Vec<u32> = edges.iter().map(|&(u, _)| u).collect();
    let chunks = 4;
    let ranges = chunk_ranges(edges.len(), chunks);
    println!("  sources:  {sources:?}");
    println!("  chunks:   {ranges:?}");
    for (pid, r) in ranges.iter().enumerate() {
        let chunk = &sources[r.clone()];
        let head = chunk[0];
        let head_count = chunk.iter().take_while(|&&x| x == head).count();
        println!(
            "  processor {pid}: head node {head} ×{head_count} -> globalTempDegree; rest -> globalDegArray"
        );
    }
    let degrees = degrees_parallel(&edges, 6, chunks);
    println!("  merged degree array: {degrees:?}");
    assert_eq!(degrees, [2, 3, 1, 3, 0, 3]);
    println!("  matches the sequential histogram ✓");
}
