//! Quickstart: generate a synthetic social network, build the CSR in
//! parallel, compress it, and run the three parallel query algorithms.
//!
//! ```text
//! cargo run --release -p parcsr --example quickstart
//! ```

use parcsr::query::{edge_exists_split, edges_exist_batch, neighbors_batch};
use parcsr::{BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_graph::gen::{rmat, RmatParams};

fn main() {
    // 1. A deterministic R-MAT graph standing in for a social-network crawl:
    //    64k nodes, 1M directed edges, heavy-tailed degrees.
    let graph = rmat(RmatParams::new(1 << 16, 1 << 20, 42));
    println!(
        "graph: {} nodes, {} edges, {} as binary edge list",
        graph.num_nodes(),
        graph.num_edges(),
        human(graph.binary_bytes())
    );

    // 2. Parallel CSR construction (sort -> parallel degrees -> prefix-sum
    //    offsets -> parallel fill), with per-stage timings.
    let (csr, timings) = CsrBuilder::new().build_timed(&graph);
    println!(
        "csr built in {:.2} ms (sort {:.2} + degrees {:.2} + scan {:.2} + fill {:.2}), {}",
        timings.total_ms(),
        timings.sort_ms,
        timings.degree_ms,
        timings.scan_ms,
        timings.fill_ms,
        human(csr.heap_bytes())
    );

    // 3. Bit-packed compression (Algorithm 4) with gap-coded rows.
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, rayon::current_num_threads());
    println!(
        "packed csr: {} ({}-bit columns, {}-bit offsets) — {:.1}% of the raw CSR",
        human(packed.packed_bytes()),
        packed.column_width(),
        packed.offset_width(),
        packed.packed_bytes() as f64 / csr.heap_bytes() as f64 * 100.0
    );

    // 4. Parallel queries against the *compressed* structure.
    let p = rayon::current_num_threads();
    let who: Vec<u32> = (0..8).collect();
    let hoods = neighbors_batch(&packed, &who, p);
    for (u, hood) in who.iter().zip(&hoods) {
        let preview: Vec<u32> = hood.iter().copied().take(8).collect();
        println!(
            "  neighbors({u}) = {preview:?}{}",
            if hood.len() > 8 { " …" } else { "" }
        );
    }

    let probes = vec![(0u32, 1u32), (1, 0), (100, 200), (42, 4242)];
    let exists = edges_exist_batch(&packed, &probes, p);
    for (q, e) in probes.iter().zip(&exists) {
        println!("  edge {q:?} exists: {e}");
    }

    // 5. Single-edge query with the neighbor list split across processors
    //    (Algorithm 8) — the hub-node specialty.
    let hub = (0..graph.num_nodes() as u32)
        .max_by_key(|&u| csr.degree(u))
        .expect("non-empty graph");
    let target = csr.neighbors(hub).last().copied().unwrap_or(0);
    println!(
        "  hub {hub} (degree {}): split search for {target} -> {}",
        csr.degree(hub),
        edge_exists_split(&packed, hub, target, p)
    );
}

fn human(bytes: usize) -> String {
    if bytes >= 1_000_000 {
        format!("{:.2} MB", bytes as f64 / 1e6)
    } else if bytes >= 1_000 {
        format!("{:.2} KB", bytes as f64 / 1e3)
    } else {
        format!("{bytes} B")
    }
}
