//! Graph analytics directly on the compressed structure — the downstream
//! workloads the paper's introduction motivates (influence, reachability,
//! communities), run on both the plain and the bit-packed CSR to show the
//! compressed structure is genuinely usable, not just storable.
//!
//! ```text
//! cargo run --release -p parcsr --example analytics
//! ```

use std::time::Instant;

use parcsr::{BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_algos::{
    bfs_parallel, connected_components_parallel, count_triangles, pagerank, PageRankConfig,
    UNREACHABLE,
};
use parcsr_graph::gen::{rmat, RmatParams};

fn main() {
    let n = 1 << 15;
    let m = 1 << 19;
    println!("analytics over a {n}-node / {m}-edge synthetic social network\n");
    let graph = rmat(RmatParams::new(n, m, 42)).symmetrized();
    let csr = CsrBuilder::new().build(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, rayon::current_num_threads());
    println!(
        "structures: csr {:.2} MB, packed {:.2} MB\n",
        csr.heap_bytes() as f64 / 1e6,
        packed.packed_bytes() as f64 / 1e6
    );

    // Reachability (epidemic-spread style): BFS from the biggest hub.
    let hub = (0..csr.num_nodes() as u32)
        .max_by_key(|&u| csr.degree(u))
        .expect("non-empty");
    let t = Instant::now();
    let dist_plain = bfs_parallel(&csr, hub);
    let plain_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let dist_packed = bfs_parallel(&packed, hub);
    let packed_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(dist_plain, dist_packed, "packed BFS must match plain BFS");
    let reached = dist_plain.iter().filter(|&&d| d != UNREACHABLE).count();
    let ecc = dist_plain
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .max()
        .unwrap();
    println!(
        "BFS from hub {hub} (degree {}): reaches {reached}/{} nodes, eccentricity {ecc}",
        csr.degree(hub),
        csr.num_nodes()
    );
    println!("  plain csr: {plain_ms:.1} ms, packed csr: {packed_ms:.1} ms (identical output)\n");

    // Influence: PageRank.
    let t = Instant::now();
    let (ranks, iters) = pagerank(&csr, PageRankConfig::default());
    let mut top: Vec<(u32, f64)> = ranks
        .iter()
        .copied()
        .enumerate()
        .map(|(u, r)| (u as u32, r))
        .collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "PageRank converged in {iters} iterations ({:.1} ms); top influencers:",
        t.elapsed().as_secs_f64() * 1e3
    );
    for (u, r) in top.iter().take(5) {
        println!("  node {u:>6}  rank {r:.6}  degree {}", csr.degree(*u));
    }
    println!();

    // Communities: weakly connected components.
    let t = Instant::now();
    let labels = connected_components_parallel(&csr);
    let mut uniq = labels.clone();
    uniq.sort_unstable();
    uniq.dedup();
    println!(
        "connected components: {} components ({:.1} ms)",
        uniq.len(),
        t.elapsed().as_secs_f64() * 1e3
    );

    // Cohesion: triangles.
    let t = Instant::now();
    let tri = count_triangles(&graph);
    println!(
        "triangles: {tri} ({:.1} ms) — heavy clustering, as a social graph should show",
        t.elapsed().as_secs_f64() * 1e3
    );
}
