//! Domain scenario from the paper's introduction: a social-network service
//! answering "who are this user's friends?" and "are these two users
//! connected?" at high volume, directly on the compressed structure.
//!
//! Compares the same query workload on the edge list, the adjacency list,
//! the plain CSR and the bit-packed CSR, reporting memory footprint and
//! query throughput for each — the time/space trade-off the paper frames.
//!
//! ```text
//! cargo run --release -p parcsr --example social_queries [nodes] [edges]
//! ```

use std::time::Instant;

use parcsr::query::{edges_exist_batch_binary, neighbors_batch, NeighborSource};
use parcsr::{BitPackedCsr, CsrBuilder, PackedCsrMode};
use parcsr_baseline::{AdjacencyList, EdgeListStore, GraphStore};
use parcsr_graph::gen::{rmat, RmatParams};
use parcsr_graph::NodeId;

struct StoreAdapter<'a, S: GraphStore + Sync>(&'a S);

impl<S: GraphStore + Sync> NeighborSource for StoreAdapter<'_, S> {
    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }
    fn degree(&self, u: NodeId) -> usize {
        self.0.degree(u)
    }
    fn row_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        self.0.row_into(u, out)
    }
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.0.has_edge(u, v)
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 17);
    let m: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 21);
    let p = rayon::current_num_threads();

    println!("simulated social network: {n} users, {m} follow edges, {p} processors\n");
    let graph = rmat(RmatParams::new(n, m, 7));

    let csr = CsrBuilder::new().build(&graph);
    let packed = BitPackedCsr::from_csr(&csr, PackedCsrMode::Gap, p);
    let adj = AdjacencyList::from_edge_list(&graph);
    let flat = EdgeListStore::from_edge_list(&graph);

    // A session burst: 100k mixed queries.
    let friend_lookups: Vec<NodeId> = (0..50_000).map(|i| ((i * 48271) % n) as NodeId).collect();
    let connection_checks: Vec<(NodeId, NodeId)> = (0..50_000)
        .map(|i| {
            if i % 2 == 0 {
                graph.edges()[(i * 31) % m]
            } else {
                (((i * 16807) % n) as NodeId, ((i * 69621) % n) as NodeId)
            }
        })
        .collect();

    println!(
        "{:<16} {:>12} {:>16} {:>16}",
        "structure", "memory", "friends-of (qps)", "connected? (qps)"
    );
    report(
        "edge list",
        flat.heap_bytes(),
        &StoreAdapter(&flat),
        &friend_lookups,
        &connection_checks,
        p,
    );
    report(
        "adjacency list",
        adj.heap_bytes(),
        &StoreAdapter(&adj),
        &friend_lookups,
        &connection_checks,
        p,
    );
    report(
        "csr",
        csr.heap_bytes(),
        &csr,
        &friend_lookups,
        &connection_checks,
        p,
    );
    report(
        "packed csr",
        packed.packed_bytes(),
        &packed,
        &friend_lookups,
        &connection_checks,
        p,
    );

    println!(
        "\npacked CSR serves the same queries in {:.1}% of the edge list's memory",
        packed.packed_bytes() as f64 / flat.heap_bytes() as f64 * 100.0
    );
}

fn report<S: NeighborSource>(
    name: &str,
    bytes: usize,
    source: &S,
    friends: &[NodeId],
    checks: &[(NodeId, NodeId)],
    p: usize,
) {
    let t = Instant::now();
    let hoods = neighbors_batch(source, friends, p);
    let friends_qps = friends.len() as f64 / t.elapsed().as_secs_f64();
    std::hint::black_box(&hoods);

    let t = Instant::now();
    let answers = edges_exist_batch_binary(source, checks, p);
    let checks_qps = checks.len() as f64 / t.elapsed().as_secs_f64();
    std::hint::black_box(&answers);

    println!(
        "{:<16} {:>9.2} MB {:>16.0} {:>16.0}",
        name,
        bytes as f64 / 1e6,
        friends_qps,
        checks_qps
    );
}
